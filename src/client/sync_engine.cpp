#include "client/sync_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "chunking/rsync.hpp"
#include "compress/lzss.hpp"

namespace cloudsync {

// The transfer-path machinery the engine used to hold inline — the delta
// blueprint/skeleton, the incremental-sync memos, and the per-protocol
// planning branches — now lives behind the protocol registry in
// client/sync_protocol.{hpp,cpp}.

namespace {
/// Tombstone record for a deletion (attribute update, §4.2).
constexpr std::uint64_t kDeleteRecordBytes = 300;
/// Per-file entry in a BDS delete/rename manifest.
constexpr std::uint64_t kBatchDeleteEntryBytes = 120;
/// Error status + body the server returns for a rejected request (5xx/429).
constexpr std::uint64_t kErrorResponseBytes = 512;
/// Wasted wire bytes of one rejected per-item commit inside a BDS batch.
constexpr std::uint64_t kBdsItemProbeBytes = 400;

// Resumable-session control sizes (metered as traffic_category::resume):
// session open request / token reply, per-chunk range header / ack, the
// finalize marker riding the commit exchange, and the session-status query a
// restarted client pays before resuming.
constexpr std::uint64_t kSessionBeginUpBytes = 200;
constexpr std::uint64_t kSessionBeginDownBytes = 100;
constexpr std::uint64_t kChunkControlUpBytes = 48;
constexpr std::uint64_t kChunkAckDownBytes = 32;
constexpr std::uint64_t kSessionFinalizeUpBytes = 64;
constexpr std::uint64_t kSessionFinalizeDownBytes = 32;
constexpr std::uint64_t kSessionQueryUpBytes = 72;
constexpr std::uint64_t kSessionQueryDownBytes = 96;

/// Ranged-GET request a cache miss pays to re-hydrate a run of evicted
/// blocks (metered as traffic_category::rehydrate, like the block bytes).
constexpr std::uint64_t kRehydrateRequestBytes = 96;

/// Chunk count of a `total`-byte wire payload at `chunk_bytes` granularity.
std::uint32_t chunk_count(std::uint64_t total, std::size_t chunk_bytes) {
  if (total == 0) return 0;
  return static_cast<std::uint32_t>((total + chunk_bytes - 1) / chunk_bytes);
}

/// Size of chunk `index` (the last chunk carries the remainder).
std::uint64_t chunk_size_at(std::uint64_t total, std::size_t chunk_bytes,
                            std::uint32_t index) {
  const std::uint64_t start =
      static_cast<std::uint64_t>(index) * chunk_bytes;
  return std::min<std::uint64_t>(chunk_bytes, total - start);
}

}  // namespace

sync_client::sync_client(sim_clock& clock, memfs& fs, cloud& cl, user_id user,
                         sync_options opts)
    : clock_(clock),
      fs_(fs),
      cloud_(cl),
      user_(user),
      opts_(std::move(opts)),
      conn_(opts_.link, opts_.tcp, meter_),
      defer_(opts_.profile.defer.instantiate()),
      device_(opts_.reuse_device != 0 ? opts_.reuse_device
                                      : cl.attach_device(user)),
      selector_(opts_.protocol, opts_.link) {
  if (opts_.warm_connection) {
    conn_.exchange(clock_.now(), 64, 64);
    meter_.reset();
  }
  // Attach the injector only after the unmetered warm-up exchange: client
  // start-up is outside the failure model (and constructors must not throw
  // transient faults).
  conn_.set_fault_injector(opts_.faults);
  if (opts_.transfer.enabled) {
    shard_retry_policy srp;
    srp.max_attempts = opts_.retry.max_attempts;
    srp.base_backoff = opts_.retry.base_backoff;
    srp.backoff_multiplier = opts_.retry.backoff_multiplier;
    srp.max_backoff = opts_.retry.max_backoff;
    srp.jitter = opts_.retry.jitter;
    shard_wire_costs costs;
    costs.control_up = kChunkControlUpBytes;
    costs.ack_down = kChunkAckDownBytes;
    costs.http_request_up = opts_.http.request_header_bytes;
    costs.http_response_down = opts_.http.response_header_bytes;
    xfer_ = std::make_unique<transfer_scheduler>(
        opts_.link, opts_.tcp, meter_, opts_.transfer, srp, costs,
        opts_.faults);
  }
  fs_subscription_ = fs_.subscribe([this](const fs_event& ev) {
    on_fs_event(ev);
  });
}

sync_client::~sync_client() {
  // The filesystem and clock outlive client incarnations (the crash harness
  // destroys a crashed client and builds a new one on the same memfs/clock):
  // detach everything that captures `this`.
  fs_.unsubscribe(fs_subscription_);
  if (commit_event_ != 0) clock_.cancel(commit_event_);
  if (poll_event_ != 0) clock_.cancel(poll_event_);
  if (wb_flush_event_ != 0) clock_.cancel(wb_flush_event_);
}

void sync_client::on_fs_event(const fs_event& ev) {
  // Changes this client is applying on behalf of the cloud must not loop
  // back into the upload pipeline.
  if (applying_remote_) return;
  const sim_time now = clock_.now();

  auto queue_upsert = [&](const std::string& path) {
    pending_change& chg = dirty_[path];
    chg.remove = false;
    const file_manifest* man = cloud_.manifest(user_, path);
    chg.existed_in_cloud = man != nullptr && !man->deleted;
    refresh_entry_estimate(path, chg);
  };
  auto queue_remove = [&](const std::string& path) {
    const file_manifest* man = cloud_.manifest(user_, path);
    const bool in_cloud = man != nullptr && !man->deleted;
    if (!in_cloud && !dirty_.contains(path)) return;  // never synced
    if (!in_cloud) {
      drop_entry_estimate(path);
      dirty_.erase(path);  // created and deleted within one defer window
      return;
    }
    pending_change& chg = dirty_[path];
    chg.remove = true;
    chg.existed_in_cloud = true;
    refresh_entry_estimate(path, chg);
  };

  bool intercepted = false;
  switch (ev.op) {
    case fs_event::kind::created:
    case fs_event::kind::modified:
      // Write-back cache tier: dirty the cached blocks and wait out the
      // coalescing window instead of entering the dirty set now.
      intercepted = write_back_intercept(ev);
      if (!intercepted) queue_upsert(ev.path);
      break;
    case fs_event::kind::removed:
      // A pending write-back for a deleted path is moot: its dirty blocks
      // die with the file (the tombstone still syncs below).
      wb_due_.erase(ev.path);
      queue_remove(ev.path);
      break;
    case fs_event::kind::renamed:
      // Renames bypass the coalescing window: the remove half must sync,
      // so the new path syncs with it rather than trailing a window behind.
      wb_due_.erase(ev.old_path);
      wb_due_.erase(ev.path);
      queue_remove(ev.old_path);
      queue_upsert(ev.path);
      break;
  }

  // Condition 2 (§6.2): metadata computation queues up on the client.
  const sim_time start = std::max(index_busy_until_, now);
  index_busy_until_ = start + opts_.hardware.index_time(ev.size_after);

  if (dirty_.empty() && wb_due_.empty()) return;
  if (!has_earliest_dirty_) {
    // Write-back paths arm the staleness anchor too: their wait includes
    // the coalescing window.
    has_earliest_dirty_ = true;
    earliest_dirty_ = now;
  }
  if (!dirty_.empty()) {
    schedule_commit(defer_->next_fire(now, pending_update_estimate()));
  }
}

bool sync_client::write_back_intercept(const fs_event& ev) {
  block_cache* bc = opts_.cache_tier;
  if (bc == nullptr || bc->config().write_mode != cache_write_mode::write_back) {
    return false;
  }
  bc->note_local_write(ev.path, fs_.read(ev.path));
  // First unflushed write arms the deadline; later writes coalesce into it.
  if (!wb_due_.contains(ev.path)) {
    wb_due_[ev.path] = clock_.now() + bc->config().coalesce_window;
    schedule_wb_flush();
  }
  return true;
}

void sync_client::schedule_wb_flush() {
  if (wb_flush_event_ != 0) {
    clock_.cancel(wb_flush_event_);
    wb_flush_event_ = 0;
  }
  if (wb_due_.empty()) return;
  sim_time first = wb_due_.begin()->second;
  for (const auto& [path, due] : wb_due_) first = std::min(first, due);
  wb_flush_event_ = clock_.schedule_at(first, [this] { flush_write_back(); });
}

void sync_client::flush_write_back() {
  wb_flush_event_ = 0;
  const sim_time now = clock_.now();
  bool queued = false;
  for (auto it = wb_due_.begin(); it != wb_due_.end();) {
    if (it->second > now) {
      ++it;
      continue;
    }
    const std::string& path = it->first;
    if (fs_.exists(path)) {
      pending_change& chg = dirty_[path];
      chg.remove = false;
      const file_manifest* man = cloud_.manifest(user_, path);
      chg.existed_in_cloud = man != nullptr && !man->deleted;
      refresh_entry_estimate(path, chg);
      queued = true;
    }
    it = wb_due_.erase(it);
  }
  schedule_wb_flush();
  // The window already deferred these updates; commit as soon as the §6.2
  // gates allow instead of stacking the service defer policy on top.
  if (queued) schedule_commit(now);
}

void sync_client::refresh_entry_estimate(const std::string& path,
                                         pending_change& chg) {
  // Rough size of this file's not-yet-synced delta: how far the local size
  // drifted from the last-synced (shadow) size. Good enough for byte-counter
  // (UDS) deferment decisions. Maintained incrementally — one shadow lookup
  // per fs event for the touched path, instead of a full dirty_ scan.
  std::uint64_t e;
  if (chg.remove) {
    e = 256;  // tombstone record
  } else {
    const auto shadow_it = shadow_.find(path);
    const std::uint64_t shadow_size =
        shadow_it == shadow_.end() ? 0 : shadow_it->second.content.size();
    const std::uint64_t local = fs_.exists(path) ? fs_.size(path) : 0;
    e = local > shadow_size ? local - shadow_size : shadow_size - local;
    if (local == shadow_size && local > 0) e += 1;  // in-place edit
  }
  pending_estimate_ += e - chg.estimate;  // unsigned delta; wraps correctly
  chg.estimate = e;
}

void sync_client::drop_entry_estimate(const std::string& path) {
  const auto it = dirty_.find(path);
  if (it != dirty_.end()) pending_estimate_ -= it->second.estimate;
}

void sync_client::schedule_commit(sim_time at) {
  if (commit_event_ != 0) clock_.cancel(commit_event_);
  commit_event_ = clock_.schedule_at(at, [this] { try_commit(); });
}

void sync_client::try_commit() {
  commit_event_ = 0;
  if (dirty_.empty()) return;

  const sim_time now = clock_.now();
  const sim_time gate = std::max(network_busy_until_, index_busy_until_);
  if (now < gate) {
    // §6.2: previous transfer or indexing still running — the batch keeps
    // accumulating (natural batching on poor networks / slow hardware).
    schedule_commit(gate);
    return;
  }

  auto batch = std::move(dirty_);
  dirty_.clear();
  pending_estimate_ = 0;
  ++commits_;
  // Capture the batch's staleness anchor before commit_batch runs: a failed
  // transaction may requeue its change into dirty_ and re-arm the anchor for
  // the follow-up commit.
  const bool had_earliest = has_earliest_dirty_;
  const sim_time batch_earliest = earliest_dirty_;
  has_earliest_dirty_ = false;
  // The client engine itself needs time to finish a commit (bookkeeping,
  // polling, server turnaround) before the next one can start — the
  // service-specific part of §6.2's natural batching.
  network_busy_until_ =
      commit_batch(now, std::move(batch)) + opts_.profile.commit_processing;
  defer_->on_commit();
  if (had_earliest) {
    staleness_sec_.add((network_busy_until_ - batch_earliest).sec());
  }
}

sim_time sync_client::commit_batch(
    sim_time start, std::map<std::string, pending_change> batch) {
  const method_profile& mp = opts_.profile.method(opts_.method);
  sim_time t = start;

  if (mp.batched_sync && batch.size() > 1) {
    // BDS: one exchange carries the whole batch — one batch overhead plus a
    // small manifest entry per file. Server-side applies are per-item commits
    // made while the batch is assembled, so a dedup decision can depend on
    // earlier items exactly as it does without faults; a rejected item
    // retries with backoff and meters a small wasted probe. The batch
    // manifest then ships in one exchange, retried until it lands (its
    // applies are already durable server-side).
    std::uint64_t up_payload = 0;
    std::uint64_t up_meta = mp.bds_batch_overhead_up;
    std::uint64_t down_meta = mp.bds_batch_overhead_down;
    for (const auto& [path, chg] : batch) {
      upload_plan plan;
      if (!chg.remove) plan = plan_upload(path, t);
      // Journaled BDS: each item gets its own record around its durable
      // per-item apply (there is no kill site between apply and journal
      // commit, so the pair is atomic); the batch-manifest exchange below is
      // journaled separately. Items diverted to a conflicted copy ship
      // nothing and need no record.
      std::uint64_t txn = 0;
      if (opts_.journal != nullptr &&
          (chg.remove || plan.act != upload_action::none)) {
        const file_manifest* man = cloud_.manifest(user_, path);
        const std::uint64_t base =
            man != nullptr && !man->deleted ? man->version : 0;
        const journal_kind kind =
            chg.remove ? journal_kind::remove
            : plan.act == upload_action::delta ? journal_kind::upload_delta
                                               : journal_kind::upload_full;
        txn = opts_.journal->begin(
            path, kind, plan.payload_up, 0, base,
            chg.remove ? 0 : fs_.read(path).hash64(), t);
        maybe_crash(crash_site::after_plan, t);
        opts_.journal->mark_in_flight(txn);
      }
      int rejections = 0;
      bool applied = false;
      for (int attempt = 1;; ++attempt) {
        try {
          if (chg.remove) {
            cloud_.delete_file(user_, device_, path, t);
            shadow_.erase(path);
            base_version_.erase(path);
            drop_cache_tier(path);
          } else {
            apply_upload(path, plan, t);
          }
          applied = true;
          break;
        } catch (const transient_fault& f) {
          ++retries_;
          meter_.record(direction::up, traffic_category::retry,
                        kBdsItemProbeBytes);
          meter_.record(direction::down, traffic_category::retry,
                        kErrorResponseBytes);
          if (!chg.remove && plan.act == upload_action::delta &&
              ++rejections >= opts_.retry.delta_fallback_after) {
            // Graceful degradation: the server keeps rejecting the patch —
            // re-plan the item as a full-file upload.
            ++fallbacks_;
            plan = plan_upload(path, t, /*force_full=*/true);
          }
          if (attempt >= opts_.retry.max_attempts) break;
          sim_time next = t + backoff_delay(attempt);
          if (f.retry_after() > next) next = f.retry_after();
          t = next;
        }
      }
      if (!applied) {
        if (txn != 0) {
          opts_.journal->abort(txn,
                               "batched item failed: retry budget exhausted");
        }
        requeue(path, chg);
        continue;
      }
      if (txn != 0) {
        opts_.journal->commit(txn);
        opts_.journal->checkpoint();
      }
      if (chg.remove) {
        up_meta += kBatchDeleteEntryBytes;
      } else {
        up_payload += plan.payload_up;
        up_meta += plan.metadata_up + mp.bds_per_file_bytes;
        down_meta += plan.metadata_down;
      }
    }
    if (opts_.journal != nullptr) {
      // Journal the batch-manifest exchange too: a crash here leaves a
      // record that recovery simply discards — the per-item applies above
      // are already durable, so the rescan finds nothing to re-send.
      sync_journal& j = *opts_.journal;
      const std::uint64_t btxn = j.begin("<bds-batch>",
                                         journal_kind::batch_manifest,
                                         up_payload, 0, 0, 0, t);
      maybe_crash(crash_site::before_commit, t);
      j.mark_in_flight(btxn);
      t = do_exchange(t, up_payload, up_meta, 0, down_meta, {}, 0, nullptr,
                      /*never_give_up=*/true);
      j.commit(btxn);
      j.checkpoint();
      return t;
    }
    return do_exchange(t, up_payload, up_meta, 0, down_meta, {}, 0, nullptr,
                       /*never_give_up=*/true);
  }

  // Non-BDS: every file is its own sync transaction. The first transaction
  // of a burst pays the full per-event overhead; follow-ups within the same
  // burst ride the established session state and pay the burst overhead.
  bool first = true;
  for (const auto& [path, chg] : batch) {
    const std::uint64_t oh_up = first ? mp.base_overhead_up
                                      : mp.burst_overhead_up;
    const std::uint64_t oh_down = first ? mp.base_overhead_down
                                        : mp.burst_overhead_down;
    first = false;
    if (opts_.journal != nullptr) {
      // Journaled build: every transaction is recorded and uploads ship
      // through resumable sessions (kill sites armed inside).
      t = chg.remove ? journaled_remove(path, chg, t, oh_up, oh_down)
                     : journaled_upload(path, chg, t, oh_up, oh_down);
      continue;
    }
    txn_outcome oc = txn_outcome::ok;
    if (chg.remove) {
      const sim_time at = t;
      t = do_exchange(t, 0, oh_up + kDeleteRecordBytes, 0, oh_down,
                      [&, at] {
                        cloud_.delete_file(user_, device_, path, at);
                        shadow_.erase(path);
                        base_version_.erase(path);
                        drop_cache_tier(path);
                      },
                      0, &oc);
      if (oc != txn_outcome::ok) requeue(path, chg);
      continue;
    }
    upload_plan plan = plan_upload(path, t);
    const sim_time at = t;
    t = do_exchange(t, plan.payload_up, plan.metadata_up + oh_up, 0,
                    plan.metadata_down + oh_down,
                    [&, at] { apply_upload(path, plan, at); },
                    plan.act == upload_action::delta
                        ? opts_.retry.delta_fallback_after
                        : 0,
                    &oc);
    if (oc == txn_outcome::apply_failed) {
      // Graceful degradation: the server keeps rejecting the delta — ship
      // the whole file instead (a plain PUT needs no patch machinery).
      ++fallbacks_;
      plan = plan_upload(path, t, /*force_full=*/true);
      const sim_time at2 = t;
      t = do_exchange(t, plan.payload_up, plan.metadata_up + oh_up, 0,
                      plan.metadata_down + oh_down,
                      [&, at2] { apply_upload(path, plan, at2); }, 0, &oc);
    }
    if (oc != txn_outcome::ok) requeue(path, chg);
  }
  return t;
}

void sync_client::requeue(const std::string& path, const pending_change& chg) {
  ++requeues_;
  pending_change& back = dirty_[path];
  back.remove = chg.remove;
  back.existed_in_cloud = chg.existed_in_cloud;
  refresh_entry_estimate(path, back);
  if (!has_earliest_dirty_) {
    has_earliest_dirty_ = true;
    earliest_dirty_ = clock_.now();
  }
  schedule_commit(clock_.now() + opts_.retry.requeue_cooldown);
}

sim_time sync_client::backoff_delay(int attempt) const {
  const retry_policy& rp = opts_.retry;
  double d =
      rp.base_backoff.sec() * std::pow(rp.backoff_multiplier, attempt - 1);
  d = std::min(d, rp.max_backoff.sec());
  if (opts_.faults != nullptr && rp.jitter > 0) {
    // Seeded jitter decorrelates retry storms without breaking determinism.
    d *= 1.0 + rp.jitter * (2.0 * opts_.faults->jitter01() - 1.0);
  }
  return sim_time::from_sec(d);
}

std::uint64_t wire_payload_size(byte_view content, int level) {
  if (level <= 0 || content.empty()) return content.size();
  // Real clients skip the compressor when a sample looks incompressible.
  if (content.size() >= 4096 &&
      estimate_compression_ratio(content, 16 * 1024) < 1.05) {
    return content.size();
  }
  return lzss_compress(content, {.level = level}).size();
}

namespace {
/// The incompressibility probe threshold and sample budget of
/// wire_payload_size, shared by its streaming twins.
constexpr std::size_t kProbeMinBytes = 4096;
constexpr std::size_t kProbeSampleBudget = 16 * 1024;
constexpr double kProbeRatioCutoff = 1.05;

std::vector<byte_view> views_of(const std::vector<byte_buffer>& buffers) {
  std::vector<byte_view> views;
  views.reserve(buffers.size());
  for (const byte_buffer& b : buffers) views.emplace_back(b);
  return views;
}

/// estimate_compression_ratio over a rope, sampling the identical windows.
double estimate_ratio_ref(const content_ref& content) {
  std::vector<byte_buffer> samples;
  for (const sample_window& w :
       compression_sample_windows(content.size(), kProbeSampleBudget)) {
    byte_buffer buf;
    buf.reserve(w.length);
    content.walk_range(w.offset, w.length,
                       [&](byte_view v) { append(buf, v); });
    samples.push_back(std::move(buf));
  }
  return estimate_ratio_of_windows(views_of(samples));
}

/// estimate_compression_ratio over a delta's serialized stream: one walk
/// collects the probe windows (they are sorted and disjoint), never holding
/// more than the sample budget.
double estimate_ratio_delta_wire(const file_delta& delta,
                                 std::uint64_t wire_size) {
  const std::vector<sample_window> plan = compression_sample_windows(
      static_cast<std::size_t>(wire_size), kProbeSampleBudget);
  std::vector<byte_buffer> samples(plan.size());
  std::uint64_t off = 0;
  std::size_t wi = 0;
  walk_delta_wire(delta, [&](byte_view piece) {
    const std::uint64_t piece_end = off + piece.size();
    while (wi < plan.size() && plan[wi].offset < piece_end) {
      const std::uint64_t w_begin = plan[wi].offset;
      const std::uint64_t w_end = w_begin + plan[wi].length;
      if (w_end <= off) {
        ++wi;
        continue;
      }
      const std::uint64_t from = std::max<std::uint64_t>(off, w_begin);
      const std::uint64_t to = std::min<std::uint64_t>(piece_end, w_end);
      append(samples[wi],
             piece.subspan(static_cast<std::size_t>(from - off),
                           static_cast<std::size_t>(to - from)));
      if (to < w_end) break;  // window continues in the next piece
      ++wi;
    }
    off = piece_end;
  });
  return estimate_ratio_of_windows(views_of(samples));
}
}  // namespace

std::uint64_t wire_payload_size_ref(const content_ref& content, int level) {
  if (level <= 0 || content.empty()) return content.size();
  if (content.size() >= kProbeMinBytes &&
      estimate_ratio_ref(content) < kProbeRatioCutoff) {
    return content.size();
  }
  lzss_stream_sizer sizer(content.size(), {.level = level});
  content.walk([&](byte_view v) { sizer.feed(v); });
  return sizer.finish();
}

std::uint64_t wire_payload_size_delta(const file_delta& delta, int level) {
  const std::uint64_t size = delta_wire_size(delta);
  if (level <= 0 || size == 0) return size;
  if (size >= kProbeMinBytes &&
      estimate_ratio_delta_wire(delta, size) < kProbeRatioCutoff) {
    return size;
  }
  lzss_stream_sizer sizer(size, {.level = level});
  walk_delta_wire(delta, [&](byte_view v) { sizer.feed(v); });
  return sizer.finish();
}

std::uint64_t sync_client::shipped_size(byte_view content, int level) const {
  if (level <= 0 || content.empty()) return content.size();
  if (opts_.cache == nullptr) return wire_payload_size(content, level);
  return opts_.cache->shipped_size(content, level, &wire_payload_size);
}

std::uint64_t sync_client::shipped_size(const content_ref& content,
                                        int level) const {
  return shipped_content_size(planning_environment(), content, level);
}

planning_env sync_client::planning_environment() const {
  planning_env env;
  env.profile = &opts_.profile;
  env.method = opts_.method;
  env.cl = &cloud_;
  env.user = user_;
  env.cache = opts_.cache;
  env.whole_file_planning = opts_.whole_file_planning;
  env.journaled = opts_.journal != nullptr;
  env.session_chunk_bytes = opts_.recovery.chunk_bytes;
  return env;
}

upload_plan sync_client::plan_upload(const std::string& path, sim_time at,
                                     bool force_full) {
  upload_plan plan;

  const content_ref content = fs_.read(path);
  const file_manifest* man = cloud_.manifest(user_, path);
  const bool in_cloud = man != nullptr && !man->deleted;
  const auto shadow_it = shadow_.find(path);

  // Parent-revision check: if the cloud moved past the version our local
  // edits were based on (another device committed first), do not clobber
  // it — divert our content to a conflicted copy, which syncs as a normal
  // new file, and let the next poll fetch the winning version.
  if (in_cloud) {
    const auto base = base_version_.find(path);
    if (base != base_version_.end() && man->version > base->second) {
      const std::string conflict = path + " (conflicted copy)";
      if (!fs_.exists(conflict)) {
        fs_.create(conflict, content.retain(), at);
      }
      ++conflicts_;
      return plan;  // nothing shipped for the contested path
    }
  }

  // Cache-aware planning: delta signatures are computed from cached blocks
  // only. When any block of the old version has been evicted there is no
  // local delta basis — drop the shadow and force a full-file upload.
  bool shadow_evicted = false;
  if (opts_.cache_tier != nullptr && shadow_it != shadow_.end()) {
    if (!opts_.cache_tier->probe_resident(path)) {
      shadow_evicted = true;
      opts_.cache_tier->note_plan_fallback();
    }
  }

  const planning_env env = planning_environment();
  protocol_update up;
  up.path = &path;
  up.content = &content;
  up.in_cloud = in_cloud;
  up.shadow = shadow_it != shadow_.end() && !shadow_evicted
                  ? &shadow_it->second
                  : nullptr;
  up.force_full = force_full || shadow_evicted;

  selector_pick pick;
  const sync_protocol& proto = selector_.choose(env, up, &pick);
  plan = proto.plan(env, up);
  if (pick.predicted) plan.predicted_app_up = pick.predicted_app_up;
  return plan;
}

void sync_client::apply_upload(const std::string& path,
                               const upload_plan& plan, sim_time at) {
  if (plan.act == upload_action::none) return;
  const content_ref content = fs_.read(path);
  if (plan.act == upload_action::delta) {
    cloud_.apply_file_delta(user_, device_, path, plan.blueprint->delta, at);
  } else {
    cloud_.put_file(user_, device_, path, content, plan.payload_up, at);
  }
  // The commit landed — nothing below can throw, so a retried transaction
  // never observes a half-applied one.
  if (plan.dedup_commit) {
    // Keep the dedup index current: the new content is now stored in the
    // cloud and future identical uploads must be able to match it.
    cloud_.dedup().commit(user_, content);
  }
  base_version_[path] = cloud_.manifest(user_, path)->version;
  shadow_entry& sh = shadow_[path];
  sh.content = content.retain();
  sh.sig.reset();  // the memoized signature no longer matches
  install_cache_tier(path, sh.content);
  // Calibration feedback: the plan's app bytes are exactly what the
  // surrounding exchange meters as payload + metadata on success. Gated so
  // non-adaptive runs skip the hash (and stay cycle-identical).
  if (opts_.protocol.mode == protocol_mode::adaptive) {
    selector_.observe(plan, content.hash64(),
                      plan.payload_up + plan.metadata_up);
  }
}

void sync_client::apply_upload_session(const std::string& path,
                                       const upload_plan& plan,
                                       resume_token token, sim_time at) {
  const content_ref content = fs_.read(path);
  if (plan.act == upload_action::delta) {
    cloud_.finalize_session_delta(token, user_, device_, path,
                                  plan.blueprint->delta, at);
  } else {
    cloud_.finalize_session_put(token, user_, device_, path, content,
                                plan.payload_up, at);
  }
  if (plan.dedup_commit) cloud_.dedup().commit(user_, content);
  base_version_[path] = cloud_.manifest(user_, path)->version;
  shadow_entry& sh = shadow_[path];
  sh.content = content.retain();
  sh.sig.reset();
  install_cache_tier(path, sh.content);
  if (opts_.protocol.mode == protocol_mode::adaptive) {
    selector_.observe(plan, content.hash64(),
                      plan.payload_up + plan.metadata_up);
  }
}

void sync_client::maybe_crash(crash_site site, sim_time at) {
  if (opts_.journal == nullptr || opts_.faults == nullptr) return;
  if (opts_.faults->should_crash(site)) {
    throw client_crash(site, at, device_);
  }
}

sim_time sync_client::send_session_chunks(std::uint64_t txn,
                                          resume_token token, sim_time t,
                                          txn_outcome* oc,
                                          bool never_give_up) {
  sync_journal& j = *opts_.journal;
  const journal_record* rec = j.find(txn);
  const std::uint64_t total = rec->payload_bytes;
  const std::uint32_t chunks = rec->total_chunks;
  if (oc != nullptr) *oc = txn_outcome::ok;

  // Striped dispatch: when the adaptive controller has escalated past a
  // single connection, ship the un-acked chunks through the parallel
  // scheduler (FEC parity + hedging; acks land out of order). On a clean
  // link decide() stays at K=1 and control falls through to the serial loop
  // below — byte-identical to a scheduler-less client. The never_give_up
  // path (BDS batch exchanges) keeps its unbounded serial semantics.
  if (xfer_ != nullptr && !never_give_up && chunks > 1) {
    std::vector<chunk_range> todo;
    for (std::uint32_t i = rec->acked_chunks; i < chunks; ++i) {
      if (rec->chunk_acked(i)) continue;
      todo.push_back({i, chunk_size_at(total, opts_.recovery.chunk_bytes, i)});
    }
    if (todo.size() > 1) {
      const transfer_decision d = xfer_->decide();
      if (d.striped()) {
        const striped_outcome so = xfer_->send_striped(
            t, todo, d,
            [&](std::uint32_t idx, std::uint64_t bytes, sim_time at) {
              // Server ack + durable journal ack, atomically paired: there
              // is no kill site between the two, so resume state and
              // session state can never disagree (holes included).
              cloud_.upload_session_chunk(token, idx, bytes, at);
              j.ack_chunk(txn, idx);
              ++exchanges_;
            },
            [&](sim_time at) { maybe_crash(crash_site::mid_chunk, at); });
        if (!so.complete && oc != nullptr) *oc = txn_outcome::gave_up;
        return so.done;
      }
    }
  }

  for (std::uint32_t i = rec->acked_chunks; i < chunks; ++i) {
    // Skip holes already acked by a crashed striped attempt; for serial
    // records the mask is a pure prefix and this never skips.
    if (rec->chunk_acked(i)) continue;
    maybe_crash(crash_site::mid_chunk, t);
    const std::uint64_t bytes =
        chunk_size_at(total, opts_.recovery.chunk_bytes, i);
    exchange_spec spec;
    spec.payload_up = bytes;
    spec.resume_up = kChunkControlUpBytes;
    spec.resume_down = kChunkAckDownBytes;
    spec.never_give_up = never_give_up;
    const sim_time at = t;
    spec.apply = [&, at] { cloud_.upload_session_chunk(token, i, bytes, at); };
    t = run_exchange(t, spec, oc);
    if (oc != nullptr && *oc != txn_outcome::ok) return t;
    // The server acked the chunk and the journal records it durably; a crash
    // between the two is not a modelled kill site, so resume state and
    // session state can never disagree.
    j.ack_chunk(txn, i);
  }
  return t;
}

sim_time sync_client::finalize_session_upload(
    const std::string& path, const upload_plan& plan, std::uint64_t txn,
    resume_token token, sim_time t, std::uint64_t oh_up, std::uint64_t oh_down,
    txn_outcome* oc) {
  maybe_crash(crash_site::before_commit, t);
  exchange_spec spec;
  spec.meta_up = plan.metadata_up + oh_up;
  spec.meta_down = plan.metadata_down + oh_down;
  spec.resume_up = kSessionFinalizeUpBytes;
  spec.resume_down = kSessionFinalizeDownBytes;
  spec.apply_fail_limit = plan.act == upload_action::delta
                              ? opts_.retry.delta_fallback_after
                              : 0;
  const sim_time at = t;
  spec.apply = [&, at] { apply_upload_session(path, plan, token, at); };
  t = run_exchange(t, spec, oc);
  if (*oc == txn_outcome::ok) {
    sync_journal& j = *opts_.journal;
    j.commit(txn);
    j.checkpoint();
  }
  return t;
}

sim_time sync_client::journaled_upload(const std::string& path,
                                       const pending_change& chg, sim_time t,
                                       std::uint64_t oh_up,
                                       std::uint64_t oh_down,
                                       bool force_full) {
  sync_journal& j = *opts_.journal;
  upload_plan plan = plan_upload(path, t, force_full);
  if (plan.act == upload_action::none) return t;  // conflict diverted

  const file_manifest* man = cloud_.manifest(user_, path);
  const std::uint64_t base =
      man != nullptr && !man->deleted ? man->version : 0;
  const std::uint64_t txn = j.begin(
      path,
      plan.act == upload_action::delta ? journal_kind::upload_delta
                                       : journal_kind::upload_full,
      plan.payload_up, chunk_count(plan.payload_up, opts_.recovery.chunk_bytes),
      base, fs_.read(path).hash64(), t);
  maybe_crash(crash_site::after_plan, t);

  // Open the upload session (a small control exchange).
  resume_token token = 0;
  txn_outcome oc = txn_outcome::ok;
  {
    exchange_spec spec;
    spec.resume_up = kSessionBeginUpBytes;
    spec.resume_down = kSessionBeginDownBytes;
    const journal_record* rec = j.find(txn);
    const sim_time at = t;
    const std::uint32_t chunks = rec->total_chunks;
    const std::uint64_t payload = rec->payload_bytes;
    spec.apply = [&, at, chunks, payload] {
      token = cloud_.begin_upload_session(user_, path, chunks, payload, at);
    };
    t = run_exchange(t, spec, &oc);
  }
  if (oc != txn_outcome::ok) {
    j.abort(txn, "session open failed: retry budget exhausted");
    requeue(path, chg);
    return t;
  }
  j.set_resume_token(txn, token);
  j.mark_in_flight(txn);

  t = send_session_chunks(txn, token, t, &oc);
  if (oc != txn_outcome::ok) {
    j.abort(txn, "chunk upload failed: retry budget exhausted");
    cloud_.abandon_upload_session(token);
    requeue(path, chg);
    return t;
  }

  t = finalize_session_upload(path, plan, txn, token, t, oh_up, oh_down, &oc);
  if (oc == txn_outcome::apply_failed && plan.act == upload_action::delta) {
    // Graceful degradation, journaled: abort this transaction, abandon its
    // session, and run a fresh full-file transaction for the path.
    ++fallbacks_;
    j.abort(txn, "delta rejected by server");
    cloud_.abandon_upload_session(token);
    return journaled_upload(path, chg, t, oh_up, oh_down, /*force_full=*/true);
  }
  if (oc != txn_outcome::ok) {
    j.abort(txn, "commit failed: retry budget exhausted");
    cloud_.abandon_upload_session(token);
    requeue(path, chg);
  }
  return t;
}

sim_time sync_client::journaled_remove(const std::string& path,
                                       const pending_change& chg, sim_time t,
                                       std::uint64_t oh_up,
                                       std::uint64_t oh_down) {
  sync_journal& j = *opts_.journal;
  const file_manifest* man = cloud_.manifest(user_, path);
  const std::uint64_t base =
      man != nullptr && !man->deleted ? man->version : 0;
  const std::uint64_t txn =
      j.begin(path, journal_kind::remove, 0, 0, base, 0, t);
  maybe_crash(crash_site::after_plan, t);
  // No payload, no session: the only work is the tombstone commit itself,
  // so the mid-chunk site never arises and before-commit follows directly.
  maybe_crash(crash_site::before_commit, t);
  j.mark_in_flight(txn);
  txn_outcome oc = txn_outcome::ok;
  const sim_time at = t;
  t = do_exchange(t, 0, oh_up + kDeleteRecordBytes, 0, oh_down,
                  [&, at] {
                    cloud_.delete_file(user_, device_, path, at);
                    shadow_.erase(path);
                    base_version_.erase(path);
                    drop_cache_tier(path);
                  },
                  0, &oc);
  if (oc != txn_outcome::ok) {
    j.abort(txn, "delete failed: retry budget exhausted");
    requeue(path, chg);
    return t;
  }
  j.commit(txn);
  j.checkpoint();
  return t;
}

sim_time sync_client::do_exchange(sim_time at, std::uint64_t up_payload,
                                  std::uint64_t up_meta,
                                  std::uint64_t down_payload,
                                  std::uint64_t down_meta,
                                  const std::function<void()>& apply,
                                  int apply_fail_limit, txn_outcome* outcome,
                                  bool never_give_up) {
  exchange_spec spec;
  spec.payload_up = up_payload;
  spec.meta_up = up_meta;
  spec.payload_down = down_payload;
  spec.meta_down = down_meta;
  spec.apply = apply;
  spec.apply_fail_limit = apply_fail_limit;
  spec.never_give_up = never_give_up;
  return run_exchange(at, spec, outcome);
}

sim_time sync_client::run_exchange(sim_time at, const exchange_spec& spec,
                                   txn_outcome* outcome) {
  const std::uint64_t up_app = spec.payload_up + spec.meta_up +
                               spec.resume_up + spec.rehydrate_up +
                               opts_.http.request_header_bytes;
  const std::uint64_t down_app = spec.payload_down + spec.meta_down +
                                 spec.resume_down + spec.rehydrate_down +
                                 opts_.http.response_header_bytes;
  sim_time start = at;
  int apply_failures = 0;
  for (int attempt = 1;; ++attempt) {
    sim_time done{};
    bool exchanged = false;
    try {
      done = conn_.exchange(start, up_app, down_app);
      exchanged = true;
      if (spec.apply) spec.apply();  // server-side commit; may reject
      ++exchanges_;
      meter_.record(direction::up, traffic_category::payload, spec.payload_up);
      meter_.record(direction::up, traffic_category::metadata, spec.meta_up);
      meter_.record(direction::up, traffic_category::resume, spec.resume_up);
      meter_.record(direction::down, traffic_category::payload,
                    spec.payload_down);
      meter_.record(direction::down, traffic_category::metadata,
                    spec.meta_down);
      meter_.record(direction::down, traffic_category::resume,
                    spec.resume_down);
      meter_.record(direction::up, traffic_category::rehydrate,
                    spec.rehydrate_up);
      meter_.record(direction::down, traffic_category::rehydrate,
                    spec.rehydrate_down);
      meter_.record(direction::up, traffic_category::notification,
                    opts_.http.request_header_bytes);
      meter_.record(direction::down, traffic_category::notification,
                    opts_.http.response_header_bytes);
      // Feed the transfer controller's observation window. Pure
      // bookkeeping — no RNG, no metered bytes — so a clean link observed
      // through an enabled scheduler stays byte-identical to scheduler-off.
      if (xfer_ != nullptr) xfer_->observe_success(done - start);
      if (outcome != nullptr) *outcome = txn_outcome::ok;
      return done;
    } catch (const transient_fault& f) {
      ++retries_;
      if (xfer_ != nullptr) xfer_->observe_fault();
      const sim_time failed_at = exchanged ? done : f.at();
      if (exchanged) {
        // The request reached the server and was rejected: the app bytes it
        // carried were wasted, plus a small error response. (The connection
        // already metered the wire transport bytes as genuine use.)
        meter_.record(direction::up, traffic_category::retry, up_app);
        meter_.record(direction::down, traffic_category::retry,
                      kErrorResponseBytes);
        if (spec.apply_fail_limit > 0 &&
            ++apply_failures >= spec.apply_fail_limit) {
          if (outcome != nullptr) *outcome = txn_outcome::apply_failed;
          return failed_at;
        }
      }
      if (!spec.never_give_up && attempt >= opts_.retry.max_attempts) {
        if (outcome != nullptr) *outcome = txn_outcome::gave_up;
        return failed_at;
      }
      start = failed_at + backoff_delay(attempt);
      if (f.retry_after() > start) start = f.retry_after();
    }
  }
}

void sync_client::install_cache_tier(const std::string& path,
                                     const content_ref& content) {
  if (opts_.cache_tier != nullptr) opts_.cache_tier->install(path, content);
}

void sync_client::drop_cache_tier(const std::string& path) {
  if (opts_.cache_tier != nullptr) opts_.cache_tier->invalidate(path);
}

content_ref sync_client::read_file(const std::string& path) {
  block_cache* bc = opts_.cache_tier;
  // Unsynced local edits (pending commit or a write-back window) live on
  // the local disk by definition — serve them locally.
  if (bc == nullptr || !bc->tracks(path) || dirty_.contains(path) ||
      wb_due_.contains(path)) {
    return fs_.read(path);
  }
  const auto assembled = bc->read(
      path, [&](std::uint32_t first, std::uint32_t count) -> content_ref {
        // Backing fetch: a ranged GET against the cloud copy of the
        // last-synced version, one exchange per contiguous absent run.
        const auto remote = cloud_.file_content(user_, path);
        if (!remote) {
          throw std::logic_error("rehydration with no cloud copy");
        }
        const std::size_t bb = bc->config().block_bytes;
        const std::uint64_t off = static_cast<std::uint64_t>(first) * bb;
        const std::uint64_t len = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(count) * bb, remote->size() - off);
        exchange_spec spec;
        spec.rehydrate_up = kRehydrateRequestBytes;
        spec.rehydrate_down = len;
        const sim_time start = std::max(clock_.now(), network_busy_until_);
        network_busy_until_ = run_exchange(start, spec);
        return remote->substr(static_cast<std::size_t>(off),
                              static_cast<std::size_t>(len));
      });
  return assembled ? *assembled : fs_.read(path);
}

void sync_client::download(const std::string& path) {
  const method_profile& mp = opts_.profile.method(opts_.method);
  // Rope plumbing: both storage substrates hand back a content_ref that
  // shares the stored chunks — no copy on the read path. The handle stays
  // valid regardless of later store mutations (it pins its chunks).
  const std::optional<content_ref> remote = cloud_.file_content(user_, path);
  if (!remote) return;
  const content_ref& content = *remote;

  const std::uint64_t payload =
      shipped_size(content, mp.download_compression_level);
  const std::uint64_t down_meta =
      mp.base_overhead_down / 4 +
      static_cast<std::uint64_t>(static_cast<double>(payload) *
                                 mp.per_payload_metadata);
  const std::uint64_t up_meta = mp.base_overhead_up / 4;

  const sim_time start = std::max(clock_.now(), network_busy_until_);
  txn_outcome oc = txn_outcome::ok;
  network_busy_until_ = do_exchange(start, 0, up_meta, payload, down_meta, {},
                                    0, &oc);
  if (oc != txn_outcome::ok) {
    // Attempts exhausted: keep the stale local copy; a later notification
    // or explicit download retries the path.
    ++failed_downloads_;
    return;
  }

  // Adopt the remote version as the synced state, then materialise it
  // locally (suppressed: our own write must not re-enter the upload
  // pipeline). retain() shares chunks in CoW mode and deep-copies in flat
  // mode, so each layer's ownership semantics are preserved either way.
  shadow_entry& sh = shadow_[path];
  sh.content = content.retain();
  sh.sig.reset();
  install_cache_tier(path, sh.content);
  applying_remote_ = true;
  if (fs_.exists(path)) {
    fs_.write(path, content.retain(), clock_.now());
  } else {
    fs_.create(path, content.retain(), clock_.now());
  }
  applying_remote_ = false;
  const file_manifest* man = cloud_.manifest(user_, path);
  if (man != nullptr) base_version_[path] = man->version;
}

std::size_t sync_client::poll_remote_changes() {
  std::vector<change_notification> notes;
  try {
    notes = cloud_.metadata().fetch_notifications(user_, device_);
  } catch (const transient_fault&) {
    // Throttled/failed poll: the queue is untouched, the next poll retries;
    // only the rejected request itself was wasted.
    ++poll_failures_;
    ++retries_;
    meter_.record(direction::up, traffic_category::retry,
                  64 + opts_.http.request_header_bytes);
    meter_.record(direction::down, traffic_category::retry,
                  kErrorResponseBytes);
    return 0;
  }
  // The notification poll itself is a small exchange.
  const sim_time start = std::max(clock_.now(), network_busy_until_);
  network_busy_until_ =
      do_exchange(start, 0, 64, 0, 120 * std::max<std::size_t>(1, notes.size()));
  std::size_t applied = 0;
  for (const change_notification& note : notes) {
    if (note.deleted) {
      // Remote deletion: remove the local copy unless it carries unsynced
      // edits (then the local version survives and will re-upload).
      if (fs_.exists(note.path) && !dirty_.contains(note.path)) {
        applying_remote_ = true;
        fs_.remove(note.path, clock_.now());
        applying_remote_ = false;
      }
      shadow_.erase(note.path);
      base_version_.erase(note.path);
      drop_cache_tier(note.path);
      ++applied;
      continue;
    }
    if (dirty_.contains(note.path) && fs_.exists(note.path)) {
      // Divergent edits on both sides: the remote version wins the path,
      // the local edits survive as a conflicted copy that syncs normally
      // (the Dropbox behaviour).
      const std::string conflict = note.path + " (conflicted copy)";
      if (!fs_.exists(conflict)) {
        fs_.create(conflict, fs_.read(note.path).retain(), clock_.now());
      }
      drop_entry_estimate(note.path);
      dirty_.erase(note.path);
      ++conflicts_;
    }
    download(note.path);
    ++applied;
  }
  return applied;
}

void sync_client::enable_periodic_poll(sim_time interval, sim_time until) {
  const sim_time next = clock_.now() + interval;
  if (next > until) return;
  poll_event_ = clock_.schedule_at(next, [this, interval, until] {
    poll_event_ = 0;
    poll_remote_changes();
    enable_periodic_poll(interval, until);
  });
}

sim_time sync_client::busy_until() const {
  return std::max(network_busy_until_, index_busy_until_);
}

void sync_client::recover() {
  if (opts_.journal == nullptr) return;
  sync_journal& j = *opts_.journal;
  sim_time t = std::max(clock_.now(), network_busy_until_);
  for (const journal_record& rec : j.open_records()) {
    if (rec.state == journal_state::in_flight &&
        (rec.kind == journal_kind::upload_full ||
         rec.kind == journal_kind::upload_delta) &&
        opts_.recovery.resume && rec.resume_token != 0 &&
        cloud_.session_open(rec.resume_token)) {
      t = recover_in_flight(rec, t);
      continue;
    }
    // Discard: planned and aborted records (the rescan below re-queues the
    // path), removes and batch manifests (re-derived idempotently by the
    // rescan), and in-flight uploads when resume is off or the session is
    // gone — those pay the full re-upload through the rescan.
    if (rec.resume_token != 0) cloud_.abandon_upload_session(rec.resume_token);
    if (rec.state == journal_state::in_flight) ++recovery_restarts_;
    j.erase(rec.id);
  }
  network_busy_until_ = std::max(network_busy_until_, t);
  rescan_after_recovery();
}

sim_time sync_client::recover_in_flight(const journal_record& rec,
                                        sim_time t) {
  sync_journal& j = *opts_.journal;
  auto discard = [&] {
    cloud_.abandon_upload_session(rec.resume_token);
    j.erase(rec.id);
    ++recovery_restarts_;
  };

  // The recovery metadata round trip: ask the server how far the session
  // got. (The journal's acked count already matches it — there is no kill
  // site between a server ack and its journal ack — but a real client must
  // still pay this query, so it is charged.)
  txn_outcome oc = txn_outcome::ok;
  upload_session_status st;
  {
    exchange_spec spec;
    spec.resume_up = kSessionQueryUpBytes;
    spec.resume_down = kSessionQueryDownBytes;
    const sim_time at = t;
    spec.apply = [&, at] {
      st = cloud_.query_upload_session(rec.resume_token, at);
    };
    t = run_exchange(t, spec, &oc);
  }
  if (oc != txn_outcome::ok) {
    discard();
    return t;
  }

  // Resume only if the world still matches the plan: the local content must
  // be what the journal recorded and the cloud must still be at the plan's
  // base version. Anything else → discard; the rescan re-plans from scratch.
  if (!fs_.exists(rec.path) ||
      fs_.read(rec.path).hash64() != rec.content_hash) {
    discard();
    return t;
  }
  const file_manifest* man = cloud_.manifest(user_, rec.path);
  const std::uint64_t cur =
      man != nullptr && !man->deleted ? man->version : 0;
  if (cur != rec.base_version) {
    discard();
    return t;
  }

  upload_plan plan;
  if (rec.kind == journal_kind::upload_delta) {
    // The crashed incarnation's shadow died with it; restore the base
    // version from the client's persisted blob cache (real clients keep
    // one — modelled as the cloud copy, read locally, no bytes charged).
    auto base_content = cloud_.file_content(user_, rec.path);
    if (!base_content) {
      discard();
      return t;
    }
    shadow_entry& sh = shadow_[rec.path];
    sh.content = base_content->retain();
    sh.sig.reset();
    install_cache_tier(rec.path, sh.content);
    base_version_[rec.path] = cur;
    plan = plan_upload(rec.path, t);
    if (plan.act != upload_action::delta) {
      discard();
      return t;
    }
  } else {
    plan = plan_upload(rec.path, t, /*force_full=*/true);
  }
  // Replanning is deterministic, so the rebuilt plan must ship exactly the
  // journaled payload — the acked prefix is a prefix of it.
  if (plan.act == upload_action::none || plan.payload_up != rec.payload_bytes) {
    discard();
    return t;
  }

  t = send_session_chunks(rec.id, rec.resume_token, t, &oc);
  const method_profile& mp = opts_.profile.method(opts_.method);
  if (oc == txn_outcome::ok) {
    t = finalize_session_upload(rec.path, plan, rec.id, rec.resume_token, t,
                                mp.base_overhead_up, mp.base_overhead_down,
                                &oc);
  }
  if (oc == txn_outcome::apply_failed) {
    // The server keeps rejecting the resumed delta: degrade to a fresh
    // full-file transaction, exactly like the live path.
    ++fallbacks_;
    j.abort(rec.id, "delta rejected by server during resume");
    cloud_.abandon_upload_session(rec.resume_token);
    pending_change chg;
    chg.existed_in_cloud = cur != 0;
    return journaled_upload(rec.path, chg, t, mp.base_overhead_up,
                            mp.base_overhead_down, /*force_full=*/true);
  }
  if (oc != txn_outcome::ok) {
    j.abort(rec.id, "resume failed: retry budget exhausted");
    cloud_.abandon_upload_session(rec.resume_token);
    pending_change chg;
    chg.existed_in_cloud = cur != 0;
    requeue(rec.path, chg);
    return t;
  }
  ++resumes_;
  return t;
}

void sync_client::rescan_after_recovery() {
  const sim_time now = clock_.now();
  // Diff the sync folder against the cloud namespace. The comparison models
  // the client's persisted sync-state database (per-path version + content
  // hash, which real clients keep on disk), so it charges no traffic.
  for (const std::string& path : fs_.list()) {
    const file_manifest* man = cloud_.manifest(user_, path);
    const bool in_cloud = man != nullptr && !man->deleted;
    const content_ref local = fs_.read(path);
    bool in_sync = false;
    if (in_cloud) {
      const auto remote = cloud_.file_content(user_, path);
      in_sync = remote && remote->equal(local);
    }
    if (in_sync) {
      // Adopt as the synced state (a local disk read, not a download).
      shadow_entry& sh = shadow_[path];
      sh.content = local.retain();
      sh.sig.reset();
      install_cache_tier(path, sh.content);
      base_version_[path] = man->version;
      continue;
    }
    pending_change& chg = dirty_[path];
    chg.remove = false;
    chg.existed_in_cloud = in_cloud;
    refresh_entry_estimate(path, chg);
  }
  for (const std::string& path : cloud_.metadata().list(user_)) {
    if (fs_.exists(path)) continue;
    pending_change& chg = dirty_[path];
    chg.remove = true;
    chg.existed_in_cloud = true;
    refresh_entry_estimate(path, chg);
  }
  if (!dirty_.empty()) {
    if (!has_earliest_dirty_) {
      has_earliest_dirty_ = true;
      earliest_dirty_ = now;
    }
    schedule_commit(defer_->next_fire(now, pending_update_estimate()));
  }
}

}  // namespace cloudsync
