#include "client/sync_protocol.hpp"

#include <mutex>
#include <stdexcept>

#include "client/sync_engine.hpp"

namespace cloudsync {

namespace {
/// The memoizable part of a streaming IDS plan: the delta's event stream
/// (indices and offsets only) plus the identity of its serialized wire form.
/// Deliberately holds no payload bytes and no rope refs — entries live
/// process-wide, and a memo pinning content store chunks would leak them
/// past every experiment teardown (and hold multi-GB literals forever).
struct delta_skeleton {
  std::vector<delta_job::event> events;
  std::uint64_t wire_size = 0;
  std::uint64_t wire_hash = 0;
};

// Process-wide memos for incremental sync. Seeded experiments reproduce the
// same shadow and edited contents across bench cells and services, so the
// per-block MD5 signature work and the rolling-window delta search recur
// identically; both are pure functions of their keys, so sharing the results
// (also across parallel_runner workers) cannot change any output.

using signature_ptr = std::shared_ptr<const file_signature>;

content_memo<signature_ptr>& signature_memo() {
  static content_memo<signature_ptr> memo;
  return memo;
}

using skeleton_ptr = std::shared_ptr<const delta_skeleton>;

content_memo<skeleton_ptr>& delta_memo() {
  static content_memo<skeleton_ptr> memo;
  return memo;
}

/// Salt identifying the old-file side of a delta: folds the signature's full
/// block structure so two different shadows can never share a memo entry.
std::uint64_t signature_salt(const file_signature& sig) {
  std::uint64_t h = mix64(sig.file_size ^
                          sig.block_size * 0x9e3779b97f4a7c15ULL);
  for (const block_signature& b : sig.blocks) {
    h = mix64(h ^ b.weak) ^ b.strong.prefix64();
  }
  return mix64(h);
}
}  // namespace

content_cache_stats signature_memo_stats() { return signature_memo().stats(); }
content_cache_stats delta_memo_stats() { return delta_memo().stats(); }
void clear_incremental_sync_memos() {
  signature_memo().clear();
  delta_memo().clear();
}

const char* to_string(protocol_id id) {
  switch (id) {
    case protocol_id::full_file: return "full_file";
    case protocol_id::rsync: return "rsync";
    case protocol_id::cdc_dedup: return "cdc_dedup";
  }
  return "protocol?";
}

std::uint64_t shipped_content_size(const planning_env& env,
                                   const content_ref& content, int level) {
  if (level <= 0 || content.empty()) return content.size();
  const auto compute = [&] {
    return env.whole_file_planning
               ? wire_payload_size(content.flatten(), level)
               : wire_payload_size_ref(content, level);
  };
  if (env.cache == nullptr) return compute();
  // hash64() matches content_hash64 of the flat bytes, so rope and flat
  // lookups hit the same cache entries.
  return env.cache->shipped_size_keyed(content.hash64(), content.size(),
                                       level, compute);
}

std::uint64_t shipped_delta_size(const planning_env& env,
                                 const delta_blueprint& bp, int level) {
  if (level <= 0 || bp.wire_size == 0) return bp.wire_size;
  const auto compute = [&]() -> std::uint64_t {
    return env.whole_file_planning
               ? wire_payload_size(bp.wire, level)
               : wire_payload_size_delta(bp.delta, level);
  };
  if (env.cache == nullptr) return compute();
  // wire_hash == content_hash64 of the serialized delta, so both planning
  // modes (and any flat-bytes lookup) share the same cache entries.
  return env.cache->shipped_size_keyed(bp.wire_hash, bp.wire_size, level,
                                       compute);
}

const file_signature& shadow_signature(const planning_env& env,
                                       shadow_entry& sh) {
  const std::size_t block_size = env.profile->delta_chunk_size;
  if (!sh.sig || sh.sig_block_size != block_size) {
    auto sign = [&]() -> signature_ptr {
      return std::make_shared<const file_signature>(
          env.whole_file_planning
              ? compute_signature(sh.content.flatten(), block_size)
              : compute_signature_ref(sh.content, block_size));
    };
    sh.sig = env.cache != nullptr
                 ? signature_memo().get_or_compute_keyed(
                       sh.content.hash64(), sh.content.size(), block_size,
                       sign)
                 : sign();
    sh.sig_block_size = block_size;
    sh.sig_salt = signature_salt(*sh.sig);
  }
  return *sh.sig;
}

namespace {

/// Does this service/method participate in the dedup protocol at all? Every
/// protocol's plan registers shipped content in the dedup index under the
/// same gate the inline engine used, so the index stays current no matter
/// which protocol carried the bytes (adaptive runs mix them freely).
bool dedup_participates(const planning_env& env) {
  return env.mp().dedup_enabled &&
         env.cl->dedup().policy().granularity != dedup_granularity::none;
}

/// Compressed whole-file PUT: what every service does when it has neither a
/// shadow to delta against nor a dedup index to query.
class full_file_protocol final : public sync_protocol {
 public:
  protocol_id id() const override { return protocol_id::full_file; }
  const char* name() const override { return "full_file"; }

  bool eligible(const planning_env&, const protocol_update&) const override {
    return true;  // the universal fallback
  }

  upload_plan plan(const planning_env& env,
                   const protocol_update& up) const override {
    const method_profile& mp = env.mp();
    upload_plan plan;
    plan.dedup_commit = dedup_participates(env);
    plan.payload_up =
        shipped_content_size(env, *up.content, mp.upload_compression_level);
    plan.metadata_up = static_cast<std::uint64_t>(
        static_cast<double>(plan.payload_up) * mp.per_payload_metadata);
    plan.act = upload_action::full;
    plan.protocol = id();
    return plan;
  }
};

/// Incremental (rsync) sync — PC clients of Dropbox/SugarSync (§4.3).
/// Requires the previous synced version locally (the shadow); web and
/// mobile clients never have one.
class rsync_protocol final : public sync_protocol {
 public:
  protocol_id id() const override { return protocol_id::rsync; }
  const char* name() const override { return "rsync"; }

  bool eligible(const planning_env& env,
                const protocol_update& up) const override {
    return !up.force_full && env.mp().incremental_sync && up.in_cloud &&
           up.has_shadow();
  }

  upload_plan plan(const planning_env& env,
                   const protocol_update& up) const override {
    const method_profile& mp = env.mp();
    const content_ref& content = *up.content;
    shadow_entry& sh = *up.shadow;
    upload_plan plan;
    plan.dedup_commit = dedup_participates(env);

    const file_signature& sig = shadow_signature(env, sh);
    auto bp = std::make_shared<delta_blueprint>();
    if (env.whole_file_planning) {
      // Legacy identity-leg path: whole buffers, no memo (the memo must not
      // hold payload bytes; the identity leg only cares about wire bytes).
      bp->delta = compute_delta(sig, content.flatten());
      bp->wire = serialize_delta(bp->delta);
      bp->wire_size = bp->wire.size();
      bp->wire_hash = content_hash64(bp->wire);
    } else {
      auto plan_skeleton = [&]() -> skeleton_ptr {
        auto sk = std::make_shared<delta_skeleton>();
        sk->events = compute_delta_events(sig, content);
        const file_delta d =
            delta_from_events(sig.block_size, content, sk->events);
        sk->wire_size = delta_wire_size(d);
        content_hasher64 h;
        walk_delta_wire(d, [&](byte_view v) { h.update(v); });
        sk->wire_hash = h.finish();
        return sk;
      };
      // Key: the new content (hashed) + the old file's identity (salt,
      // cached alongside the signature), which together determine the delta
      // exactly. The memo stores the ref-free skeleton; the blueprint's rope
      // refs are re-bound to this plan's content and die with the plan.
      const skeleton_ptr sk =
          env.cache != nullptr
              ? delta_memo().get_or_compute_keyed(content.hash64(),
                                                  content.size(), sh.sig_salt,
                                                  plan_skeleton)
              : plan_skeleton();
      bp->delta = delta_from_events(sig.block_size, content, sk->events);
      bp->wire_size = sk->wire_size;
      bp->wire_hash = sk->wire_hash;
    }
    plan.blueprint = std::move(bp);
    // The delta's literal regions are compressed like any upload.
    plan.payload_up =
        shipped_delta_size(env, *plan.blueprint, mp.upload_compression_level);
    plan.metadata_up = static_cast<std::uint64_t>(
        static_cast<double>(plan.payload_up) * mp.per_payload_metadata);
    plan.act = upload_action::delta;
    plan.protocol = id();
    return plan;
  }
};

/// Full-file upload through the dedup protocol (§5.2): ship chunk
/// fingerprints, receive have/need answers, transfer only the new chunks.
/// Granularity (full-file / fixed / content-defined) comes from the cloud's
/// dedup policy.
class cdc_dedup_protocol final : public sync_protocol {
 public:
  protocol_id id() const override { return protocol_id::cdc_dedup; }
  const char* name() const override { return "cdc_dedup"; }

  bool eligible(const planning_env& env,
                const protocol_update&) const override {
    return dedup_participates(env);
  }

  upload_plan plan(const planning_env& env,
                   const protocol_update& up) const override {
    const method_profile& mp = env.mp();
    const content_ref& content = *up.content;
    upload_plan plan;
    plan.dedup_commit = true;  // eligible() implies participation

    const dedup_result res = env.cl->dedup().analyze(env.user, content);
    plan.metadata_up += res.fingerprints_sent * kFingerprintWireBytes;
    plan.metadata_down += res.fingerprints_sent * kFingerprintAnswerBytes;
    std::uint64_t payload = 0;
    for (const chunk_ref& c : res.new_chunks) {
      payload += shipped_content_size(env, content.substr(c.offset, c.size),
                                      mp.upload_compression_level);
    }
    plan.payload_up = payload;
    plan.metadata_up += static_cast<std::uint64_t>(
        static_cast<double>(payload) * mp.per_payload_metadata);
    plan.act = upload_action::full;
    plan.protocol = id();
    if (content.size() > 0) {
      plan.observed_dup_fraction =
          static_cast<double>(res.duplicate_bytes) /
          static_cast<double>(content.size());
    }
    return plan;
  }
};

}  // namespace

struct protocol_registry::impl {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<sync_protocol>> protocols;
};

protocol_registry::protocol_registry() : impl_(std::make_unique<impl>()) {
  // Built-ins in id order: the scan order of every selector, and therefore
  // the deterministic tiebreak (lowest id wins equal predicted cost).
  impl_->protocols.push_back(std::make_unique<full_file_protocol>());
  impl_->protocols.push_back(std::make_unique<rsync_protocol>());
  impl_->protocols.push_back(std::make_unique<cdc_dedup_protocol>());
}

protocol_registry& protocol_registry::instance() {
  static protocol_registry reg;
  return reg;
}

void protocol_registry::register_protocol(
    std::unique_ptr<sync_protocol> proto) {
  if (proto == nullptr) throw std::invalid_argument("null protocol");
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (static_cast<std::size_t>(proto->id()) >= kMaxProtocols) {
    throw std::invalid_argument("protocol id beyond kMaxProtocols");
  }
  for (const auto& p : impl_->protocols) {
    if (p->id() == proto->id()) {
      throw std::invalid_argument("duplicate protocol id");
    }
  }
  impl_->protocols.push_back(std::move(proto));
}

const sync_protocol* protocol_registry::find(protocol_id id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& p : impl_->protocols) {
    if (p->id() == id) return p.get();
  }
  return nullptr;
}

std::vector<const sync_protocol*> protocol_registry::all() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<const sync_protocol*> out;
  out.reserve(impl_->protocols.size());
  for (const auto& p : impl_->protocols) out.push_back(p.get());
  return out;
}

std::size_t protocol_registry::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->protocols.size();
}

const sync_protocol& select_service_default(const planning_env& env,
                                            const protocol_update& up) {
  protocol_registry& reg = protocol_registry::instance();
  // Exactly the pre-registry engine's branching: incremental sync first,
  // then the dedup protocol, then a plain compressed PUT.
  const sync_protocol* rs = reg.find(protocol_id::rsync);
  if (rs != nullptr && rs->eligible(env, up)) return *rs;
  const sync_protocol* dd = reg.find(protocol_id::cdc_dedup);
  if (dd != nullptr && dd->eligible(env, up)) return *dd;
  return *reg.find(protocol_id::full_file);
}

}  // namespace cloudsync
