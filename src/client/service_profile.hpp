// Service profiles: the reverse-engineered design choices of the six
// services the paper studies, expressed as data.
//
// Every number here is calibrated against a published measurement:
//   - per-sync-event overhead      → Table 6 (1 B column)
//   - burst / BDS behaviour        → Table 7
//   - compression per method+dir   → Table 8
//   - dedup granularity & scope    → Table 9
//   - sync deferment timers        → Fig 6 (≈4.2 s / ≈10.5 s / ≈6 s)
//   - delta-sync chunk size        → §4.3 (C ≈ 50 KB − 40 KB = 10 KB)
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "client/access_method.hpp"
#include "client/defer_policy.hpp"
#include "dedup/dedup_engine.hpp"
#include "util/units.hpp"

namespace cloudsync {

/// Per-access-method design choices (a service behaves differently from its
/// PC client, web UI, and mobile app — a central observation of the paper).
struct method_profile {
  int upload_compression_level = 0;    ///< 0 = none; maps to LZSS levels
  int download_compression_level = 0;  ///< form the cloud delivers
  bool incremental_sync = false;       ///< IDS (rsync) capable
  bool dedup_enabled = false;          ///< participates in dedup protocol
  bool batched_sync = false;           ///< BDS: one commit for many files

  // Application-level sync-event overhead (index exchange, acks, status),
  // excluding HTTP headers and transport framing which the net layer adds.
  std::uint64_t base_overhead_up = 0;    ///< first file of a commit
  std::uint64_t base_overhead_down = 0;
  std::uint64_t burst_overhead_up = 0;   ///< each further file (non-BDS)
  std::uint64_t burst_overhead_down = 0;

  // BDS accounting (only when batched_sync): one batch overhead for the
  // whole commit plus a small per-file manifest entry.
  std::uint64_t bds_batch_overhead_up = 0;
  std::uint64_t bds_batch_overhead_down = 0;
  std::uint64_t bds_per_file_bytes = 0;

  /// App-level metadata proportional to payload (chunking manifests,
  /// progress updates). Fraction of payload bytes, charged upstream.
  double per_payload_metadata = 0.0;
};

struct service_profile {
  std::string name;
  std::size_t delta_chunk_size = 10 * KiB;  ///< rsync block size for IDS
  dedup_policy dedup;
  defer_config defer;
  /// Client-side time to finish a commit beyond the network transfer
  /// (sync-engine bookkeeping, polling intervals, server commit turnaround).
  /// Gates when the *next* commit can start, so a sluggish client engine
  /// naturally batches fast update streams — this is what keeps the paper's
  /// Fig 6 maxima for Box / Ubuntu One far below the no-batching bound.
  sim_time commit_processing{};
  std::array<method_profile, 3> methods{};  ///< indexed by access_method

  const method_profile& method(access_method m) const {
    return methods[static_cast<std::size_t>(m)];
  }
  method_profile& method(access_method m) {
    return methods[static_cast<std::size_t>(m)];
  }
};

// The six mainstream services (§3.2).
service_profile google_drive();
service_profile onedrive();
service_profile dropbox();
service_profile box();
service_profile ubuntu_one();
service_profile sugarsync();

/// All six, in the paper's table order.
std::vector<service_profile> all_services();

/// Lookup by (case-sensitive) profile name; nullopt if unknown.
std::optional<service_profile> find_service(std::string_view name);

/// Copy of `base` with a different defer policy — used to evaluate ASD
/// against the shipped fixed deferments.
service_profile with_defer(service_profile base, defer_config defer);

}  // namespace cloudsync
