#include "client/sync_journal.hpp"

#include <sstream>
#include <stdexcept>

#include "util/text_table.hpp"
#include "util/units.hpp"

namespace cloudsync {

const char* to_string(journal_state s) {
  switch (s) {
    case journal_state::planned: return "planned";
    case journal_state::in_flight: return "in-flight";
    case journal_state::committed: return "committed";
    case journal_state::aborted: return "aborted";
  }
  return "?";
}

const char* to_string(journal_kind k) {
  switch (k) {
    case journal_kind::upload_full: return "upload-full";
    case journal_kind::upload_delta: return "upload-delta";
    case journal_kind::remove: return "remove";
    case journal_kind::batch_manifest: return "batch-manifest";
  }
  return "?";
}

std::uint64_t sync_journal::begin(std::string path, journal_kind kind,
                                  std::uint64_t payload_bytes,
                                  std::uint32_t total_chunks,
                                  std::uint64_t base_version,
                                  std::uint64_t content_hash, sim_time now) {
  // A fresh attempt for a path supersedes its earlier aborted record: the
  // abort was only there to witness the give-up until somebody retried.
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.path == path && it->second.state == journal_state::aborted) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  journal_record rec;
  rec.id = next_id_++;
  rec.path = std::move(path);
  rec.kind = kind;
  rec.payload_bytes = payload_bytes;
  rec.total_chunks = total_chunks;
  rec.base_version = base_version;
  rec.content_hash = content_hash;
  rec.started_at = now;
  ++begun_;
  note_transition(rec, "begin");
  const auto id = rec.id;
  records_.emplace(id, std::move(rec));
  return id;
}

void sync_journal::set_resume_token(std::uint64_t id, std::uint64_t token) {
  must_get(id).resume_token = token;
}

void sync_journal::mark_in_flight(std::uint64_t id) {
  auto& rec = must_get(id);
  if (rec.state != journal_state::planned &&
      rec.state != journal_state::in_flight) {
    throw std::logic_error("journal: mark_in_flight on a closed record");
  }
  rec.state = journal_state::in_flight;
  note_transition(rec, "in-flight");
}

void sync_journal::ack_chunk(std::uint64_t id, std::uint32_t index) {
  auto& rec = must_get(id);
  if (rec.state != journal_state::in_flight) {
    throw std::logic_error("journal: ack_chunk outside in_flight");
  }
  if (index >= rec.total_chunks) {
    throw std::logic_error("journal: chunk ack out of range");
  }
  if (rec.acked_mask.empty()) rec.acked_mask.assign(rec.total_chunks, 0);
  if (rec.acked_mask[index] != 0) {
    throw std::logic_error("journal: duplicate chunk ack");
  }
  rec.acked_mask[index] = 1;
  ++rec.acked_total;
  // The contiguous prefix only ever grows; holes behind it are closed when
  // their ack (or a resume re-send) lands.
  while (rec.acked_chunks < rec.total_chunks &&
         rec.acked_mask[rec.acked_chunks] != 0) {
    ++rec.acked_chunks;
  }
  if (trace_enabled_) {
    std::ostringstream os;
    os << "ack chunk " << index << " (" << rec.acked_total << "/"
       << rec.total_chunks << ")";
    note_transition(rec, os.str().c_str());
  }
}

void sync_journal::commit(std::uint64_t id) {
  auto& rec = must_get(id);
  // Only an in-flight transaction can commit: the exchange that makes a
  // commit durable is exactly what mark_in_flight witnesses, so a
  // planned→committed jump means a code path skipped the wire.
  if (rec.state != journal_state::in_flight) {
    throw std::logic_error("journal: commit outside in_flight");
  }
  rec.state = journal_state::committed;
  ++committed_;
  ++commits_by_path_[rec.path];
  note_transition(rec, "commit");
}

void sync_journal::abort(std::uint64_t id, std::string reason) {
  auto& rec = must_get(id);
  if (rec.state == journal_state::committed) {
    throw std::logic_error("journal: abort after commit");
  }
  rec.state = journal_state::aborted;
  rec.note = std::move(reason);
  ++aborted_;
  note_transition(rec, "abort");
}

const journal_record* sync_journal::find(std::uint64_t id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<journal_record> sync_journal::open_records() const {
  std::vector<journal_record> out;
  for (const auto& [id, rec] : records_) {
    if (rec.state != journal_state::committed) out.push_back(rec);
  }
  return out;
}

void sync_journal::erase(std::uint64_t id) { records_.erase(id); }

std::size_t sync_journal::checkpoint() {
  std::size_t dropped = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.state == journal_state::committed) {
      it = records_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::uint64_t sync_journal::commits_for(const std::string& path) const {
  auto it = commits_by_path_.find(path);
  return it == commits_by_path_.end() ? 0 : it->second;
}

journal_record& sync_journal::must_get(std::uint64_t id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    throw std::logic_error("journal: unknown transaction id");
  }
  return it->second;
}

void sync_journal::note_transition(const journal_record& rec,
                                   const char* what) {
  if (!trace_enabled_) return;
  std::ostringstream os;
  os << "txn " << rec.id << " " << what << " " << rec.path << " ["
     << to_string(rec.kind) << "]";
  if (!rec.note.empty()) os << " (" << rec.note << ")";
  trace_.push_back(os.str());
}

std::string sync_journal::dump() const {
  text_table table;
  table.header({"txn", "path", "kind", "state", "chunks", "bytes", "token",
                "base", "note"});
  for (const auto& [id, rec] : records_) {
    std::ostringstream chunks;
    chunks << rec.acked_total << "/" << rec.total_chunks;
    if (rec.acked_total != rec.acked_chunks) {
      chunks << " (prefix " << rec.acked_chunks << ")";
    }
    table.row({std::to_string(rec.id), rec.path, to_string(rec.kind),
               to_string(rec.state), chunks.str(),
               format_bytes(static_cast<double>(rec.payload_bytes)),
               rec.resume_token ? std::to_string(rec.resume_token) : "-",
               std::to_string(rec.base_version), rec.note});
  }
  std::ostringstream os;
  os << table.str();
  os << "records: " << records_.size() << "  begun: " << begun_
     << "  committed: " << committed_ << "  aborted: " << aborted_ << "\n";
  return os.str();
}

}  // namespace cloudsync
