// The three service access methods the paper compares throughout:
// PC client software, web browser, and mobile app.
#pragma once

#include <array>
#include <cstdint>

namespace cloudsync {

enum class access_method : std::uint8_t { pc_client, web_browser, mobile_app };

inline constexpr std::array<access_method, 3> all_access_methods = {
    access_method::pc_client, access_method::web_browser,
    access_method::mobile_app};

inline const char* to_string(access_method m) {
  switch (m) {
    case access_method::pc_client: return "PC client";
    case access_method::web_browser: return "Web-based";
    case access_method::mobile_app: return "Mobile app";
  }
  return "?";
}

}  // namespace cloudsync
