// Analytical per-update protocol cost model + adaptive selector.
//
// For each registered sync protocol the model predicts the app-level wire
// bytes (up and down) and the round trips one update would cost, from inputs
// the byte_pipeline computes in a single pass over the new content:
//   - file size
//   - chunk-level similarity vs the shadow signature (per-block weak sums)
//   - an entropy-based compressibility estimate
//   - dedup-index hit probability (synced-hash set + observed hit EWMA)
// plus the tcp cost model's RTT/bandwidth for the latency term. The adaptive
// selector scores every eligible protocol and picks the predicted-cheapest;
// a calibration loop compares each prediction against the metered actuals of
// the plan that actually shipped and feeds the observed error back as a
// per-protocol multiplicative correction factor.
//
// Determinism: feature extraction and prediction are pure CPU — no RNG, no
// clock, no meter. In service_default / forced modes the selector does not
// even extract features, so those modes are byte- and cycle-identical to the
// pre-registry engine.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "client/sync_protocol.hpp"
#include "net/link.hpp"

namespace cloudsync {

/// How the client chooses a protocol per update.
enum class protocol_mode : std::uint8_t {
  service_default,  ///< the service's historical branching (byte-identical)
  forced,           ///< always protocol_options::forced when eligible
  adaptive,         ///< cost-model argmin over eligible protocols
};

const char* to_string(protocol_mode m);

struct protocol_options {
  protocol_mode mode = protocol_mode::service_default;
  /// The pinned protocol in forced mode. When it is ineligible for an update
  /// (e.g. rsync without a shadow) the service-default order takes over, so
  /// a forced run is always able to ship.
  protocol_id forced = protocol_id::full_file;
  /// Geometric EWMA gain of the per-protocol correction factor
  /// (c ← c · (actual/predicted)^gain). 0 disables calibration.
  double calibration_gain = 0.5;
  /// Weight of the latency term when scoring: predicted round trips are
  /// charged as round_trips · RTT · uplink-bandwidth byte-equivalents.
  double rtt_cost_weight = 1.0;
};

/// What one byte_pipeline pass over the update's content yields for the
/// cost model.
struct update_features {
  std::uint64_t size = 0;
  bool has_shadow = false;
  std::uint64_t shadow_size = 0;
  std::size_t block_size = 0;      ///< signature block size (similarity grid)
  double similarity = 0.0;         ///< fraction of fixed blocks whose weak
                                   ///< sum matches a shadow signature block
  double entropy_bits_per_byte = 8.0;
  bool whole_file_duplicate = false;  ///< content hash seen synced before
  double dedup_hit_prob = 0.0;     ///< expected duplicate chunk fraction
  std::uint64_t content_hash = 0;
};

/// Predicted cost of shipping one update through one protocol.
struct cost_prediction {
  double app_up = 0.0;     ///< payload + metadata bytes, client → cloud
  double app_down = 0.0;   ///< metadata bytes, cloud → client
  double round_trips = 1.0;
  bool feasible = false;   ///< protocol eligible for this update

  /// Scalar score: bytes plus latency charged in byte-equivalents.
  double score(const link_config& link, double rtt_weight) const {
    return app_up + app_down +
           rtt_weight * round_trips * link.rtt.sec() * link.up_bytes_per_sec;
  }
};

/// Exact wire size of the delta frame the model expects: `lit_runs`
/// single-run literal regions of `literal_bytes` total, interleaved with
/// coalesced copy runs, framed exactly like delta_wire_size (varint op
/// headers + CRC trailer). Exposed so differential tests can assert
/// prediction == delta_wire_size on constructed cases.
std::uint64_t predicted_delta_frame_bytes(std::uint64_t file_size,
                                          std::size_t block_size,
                                          double similarity);

/// Predicted compressed size of `bytes` whose content has the given
/// order-0 entropy, mirroring wire_payload_size's incompressibility probe
/// fast path (level <= 0 → raw; predicted ratio < 1.05 on >= 4 KiB → raw).
double predicted_compressed_bytes(double bytes, double entropy_bits_per_byte,
                                  int level);

/// One-pass feature extraction (byte_pipeline: entropy + per-block weak
/// sums at the shadow signature's block size). `synced` is the selector's
/// knowledge of previously synced whole-file hashes; `dedup_hit_ewma` its
/// running chunk-hit estimate.
update_features extract_update_features(
    const planning_env& env, const protocol_update& up,
    const std::unordered_set<std::uint64_t>& synced_hashes,
    double dedup_hit_ewma);

/// Predict the cost of `id` for an update with `f`, before correction.
cost_prediction predict_protocol_cost(protocol_id id,
                                      const update_features& f,
                                      const planning_env& env);

/// Selector observability: pick counts, calibration state, and the
/// predicted-vs-actual relative-error distribution.
struct protocol_selector_stats {
  std::array<std::uint64_t, kMaxProtocols> picks{};       ///< by protocol id
  std::array<double, kMaxProtocols> correction{};         ///< init 1.0
  /// |predicted − actual| / actual buckets:
  /// <5%, <10%, <15%, <25%, <50%, <100%, ≥100%.
  static constexpr std::size_t kErrorBuckets = 7;
  std::array<std::uint64_t, kErrorBuckets> error_hist{};
  std::uint64_t observations = 0;
  double abs_rel_error_sum = 0.0;
  /// Raw per-observation |predicted − actual| / actual samples (bounded).
  std::vector<double> abs_rel_errors;

  protocol_selector_stats() { correction.fill(1.0); }

  double mean_abs_rel_error() const {
    return observations == 0 ? 0.0
                             : abs_rel_error_sum /
                                   static_cast<double>(observations);
  }
  /// Median of the recorded samples (0 when none).
  double median_abs_rel_error() const;
};

struct selector_pick {
  protocol_id id = protocol_id::full_file;
  bool predicted = false;       ///< adaptive mode made a prediction
  double predicted_app_up = 0;  ///< corrected payload+metadata up bytes
};

/// Per-client protocol chooser. One instance per sync_client incarnation;
/// its calibration state is in-memory client knowledge (like the dirty set)
/// and dies with the incarnation.
class protocol_selector {
 public:
  protocol_selector(protocol_options opts, link_config link);

  /// Choose the protocol for one update. Counts the pick; in adaptive mode
  /// extracts features, scores every eligible protocol (corrected), and
  /// returns the argmin — ties break to the lowest protocol id via the
  /// registry's registration order.
  const sync_protocol& choose(const planning_env& env,
                              const protocol_update& up,
                              selector_pick* pick = nullptr);

  /// Calibration feedback once a plan's exchange succeeded: `actual` is the
  /// plan's metered app bytes up (payload + metadata categories). Updates
  /// the correction factor, the error histogram, the synced-hash set, and —
  /// when the plan observed a dedup fraction — the hit-rate EWMA.
  void observe(const upload_plan& plan, std::uint64_t content_hash,
               std::uint64_t actual_app_up);

  const protocol_selector_stats& stats() const { return stats_; }
  const protocol_options& options() const { return opts_; }
  double dedup_hit_ewma() const { return dedup_hit_ewma_; }

 private:
  protocol_options opts_;
  link_config link_;
  protocol_selector_stats stats_;
  std::unordered_set<std::uint64_t> synced_hashes_;
  double dedup_hit_ewma_ = 0.0;
  bool have_dedup_obs_ = false;  ///< first observation seeds the EWMA
};

}  // namespace cloudsync
