#include "client/hardware.hpp"

namespace cloudsync {

// Calibration note: these throughputs are *end-to-end client pipeline* rates
// (hash + chunk + compress + local index update), not raw hash speed. They
// are chosen so that the M1/M2/M3 ordering and magnitude of Fig 8(c) holds:
// an outdated machine takes ~1 s to index a ~1 MB file and therefore batches
// sub-second modification streams, while a typical machine does not.

hardware_profile hardware_profile::m1() {
  return {"M1 (typical, i5 + HDD)", 50.0 * 1024 * 1024,
          sim_time::from_msec(50)};
}

hardware_profile hardware_profile::m2() {
  return {"M2 (outdated, Atom + 5400rpm)", 2.5 * 1024 * 1024,
          sim_time::from_msec(400)};
}

hardware_profile hardware_profile::m3() {
  return {"M3 (advanced, i7 + SSD)", 150.0 * 1024 * 1024,
          sim_time::from_msec(20)};
}

hardware_profile hardware_profile::m4() {
  return {"M4 (smartphone, ARM + MicroSD)", 2.0 * 1024 * 1024,
          sim_time::from_msec(500)};
}

}  // namespace cloudsync
