#include "client/service_profile.hpp"

namespace cloudsync {

namespace {

// Split an app-level overhead total into up/down parts: most sync-event
// overhead is upstream (index upload, commit) with a smaller ack/status
// stream downstream.
constexpr double kUpShare = 0.7;

method_profile overheads(std::uint64_t base_total, std::uint64_t burst_total,
                         double per_payload_metadata) {
  method_profile m;
  m.base_overhead_up = static_cast<std::uint64_t>(base_total * kUpShare);
  m.base_overhead_down = base_total - m.base_overhead_up;
  m.burst_overhead_up = static_cast<std::uint64_t>(burst_total * kUpShare);
  m.burst_overhead_down = burst_total - m.burst_overhead_up;
  m.per_payload_metadata = per_payload_metadata;
  return m;
}

void set_bds(method_profile& m, std::uint64_t batch_total,
             std::uint64_t per_file_bytes) {
  m.batched_sync = true;
  m.bds_batch_overhead_up =
      static_cast<std::uint64_t>(batch_total * kUpShare);
  m.bds_batch_overhead_down = batch_total - m.bds_batch_overhead_up;
  m.bds_per_file_bytes = per_file_bytes;
}

}  // namespace

service_profile google_drive() {
  service_profile s;
  s.name = "Google Drive";
  s.commit_processing = sim_time::from_msec(300);
  s.dedup = dedup_policy::disabled();                 // Table 9: No / No
  s.defer = defer_config::fixed(sim_time::from_sec(4.2));  // Fig 6(a)
  // Full-file sync everywhere; no compression (Table 8).
  s.method(access_method::pc_client) = overheads(8'000, 9'300, 0.085);
  s.method(access_method::web_browser) = overheads(5'000, 10'300, 0.06);
  s.method(access_method::mobile_app) = overheads(31'000, 54'300, 0.11);
  return s;
}

service_profile onedrive() {
  service_profile s;
  s.name = "OneDrive";
  s.commit_processing = sim_time::from_sec(1.0);
  s.dedup = dedup_policy::disabled();
  s.defer = defer_config::fixed(sim_time::from_sec(10.5));  // Fig 6(b)
  s.method(access_method::pc_client) = overheads(18'000, 11'300, 0.10);
  s.method(access_method::web_browser) = overheads(27'000, 20'300, 0.09);
  s.method(access_method::mobile_app) = overheads(28'000, 17'300, 0.08);
  return s;
}

service_profile dropbox() {
  service_profile s;
  s.name = "Dropbox";
  s.commit_processing = sim_time::from_msec(200);
  s.delta_chunk_size = 10 * KiB;  // §4.3: C ≈ 50 KB − 40 KB
  // Table 9: 4 MB block-level dedup, same-account only.
  s.dedup = {dedup_granularity::fixed_block, 4 * MiB, /*cross_user=*/false};
  s.defer = defer_config::none();

  method_profile pc = overheads(37'000, 0, 0.215);
  pc.incremental_sync = true;         // Fig 4(a)
  pc.dedup_enabled = true;            // Table 9
  pc.upload_compression_level = 4;    // Table 8 UP: moderate
  pc.download_compression_level = 9;  // Table 8 DN: high
  set_bds(pc, 8'000, 120);            // Table 7: TUE 1.2

  method_profile web = overheads(30'000, 0, 0.07);
  web.download_compression_level = 9;  // DN compressed even via browser
  set_bds(web, 10'000, 4'900);         // Table 7: TUE 6.0 (partial BDS)

  method_profile mobile = overheads(17'000, 0, 0.08);
  mobile.dedup_enabled = true;
  mobile.upload_compression_level = 1;    // low: battery
  mobile.download_compression_level = 9;  // DN: only Dropbox compresses
  set_bds(mobile, 8'000, 2'520);          // Table 7: TUE 3.6

  s.method(access_method::pc_client) = pc;
  s.method(access_method::web_browser) = web;
  s.method(access_method::mobile_app) = mobile;
  return s;
}

service_profile box() {
  service_profile s;
  s.name = "Box";
  s.commit_processing = sim_time::from_sec(6.0);
  s.dedup = dedup_policy::disabled();
  s.defer = defer_config::none();
  s.method(access_method::pc_client) = overheads(54'000, 10'300, 0.02);
  s.method(access_method::web_browser) = overheads(54'000, 30'300, 0.02);
  s.method(access_method::mobile_app) = overheads(15'000, 30'300, 0.05);
  return s;
}

service_profile ubuntu_one() {
  service_profile s;
  s.name = "Ubuntu One";
  s.commit_processing = sim_time::from_sec(3.0);
  // Table 9: full-file dedup, including cross-user.
  s.dedup = {dedup_granularity::full_file, 4 * MiB, /*cross_user=*/true};
  s.defer = defer_config::none();

  method_profile pc = overheads(1'200, 0, 0.085);
  pc.dedup_enabled = true;
  pc.upload_compression_level = 5;    // Table 8 UP: 5.6 MB for 10 MB text
  pc.download_compression_level = 9;  // DN: 5.3 MB
  set_bds(pc, 4'000, 360);            // Table 7: TUE 1.4

  method_profile web = overheads(36'000, 0, 0.06);
  web.download_compression_level = 9;  // DN via browser compressed
  set_bds(web, 9'000, 3'910);          // Table 7: TUE 5.0

  method_profile mobile = overheads(19'000, 23'300, 0.07);
  mobile.dedup_enabled = true;
  mobile.upload_compression_level = 1;  // low
  // DN mobile uncompressed (Table 8: 10.6 MB).

  s.method(access_method::pc_client) = pc;
  s.method(access_method::web_browser) = web;
  s.method(access_method::mobile_app) = mobile;
  return s;
}

service_profile sugarsync() {
  service_profile s;
  s.name = "SugarSync";
  s.commit_processing = sim_time::from_msec(300);
  s.dedup = dedup_policy::disabled();
  s.defer = defer_config::fixed(sim_time::from_sec(6.0));  // Fig 6(f)
  // SugarSync's IDS is visibly coarser than Dropbox's: its Fig 6(f) TUE
  // spike (~33 at X just above T) implies ~100+ KB shipped per small
  // append, i.e. a delta chunk around 128 KB.
  s.delta_chunk_size = 128 * KiB;

  method_profile pc = overheads(8'000, 7'300, 0.105);
  pc.incremental_sync = true;  // Fig 4(a): IDS on the PC client
  method_profile web = overheads(30'000, 38'300, 0.07);
  method_profile mobile = overheads(30'000, 13'300, 0.10);

  s.method(access_method::pc_client) = pc;
  s.method(access_method::web_browser) = web;
  s.method(access_method::mobile_app) = mobile;
  return s;
}

std::vector<service_profile> all_services() {
  return {google_drive(), onedrive(), dropbox(),
          box(),          ubuntu_one(), sugarsync()};
}

std::optional<service_profile> find_service(std::string_view name) {
  for (service_profile& s : all_services()) {
    if (s.name == name) return std::move(s);
  }
  return std::nullopt;
}

service_profile with_defer(service_profile base, defer_config defer) {
  base.defer = defer;
  return base;
}

}  // namespace cloudsync
