// Pluggable sync protocols: the full-file, rsync-delta, and CDC-dedup
// transfer paths factored out of the sync engine behind one interface, so
// planning an upload means asking a protocol for a transfer plan instead of
// branching inline (Boškov et al., "Enabling Cost-Benefit Analysis of Data
// Sync Protocols": no single protocol wins everywhere).
//
// The registry is an open extension point: a new protocol (e.g. a
// set-reconciliation scheme) registers once at startup and is immediately
// visible to the service-default ordering, the forced mode, and the adaptive
// cost-model selector (client/protocol_cost.hpp). Determinism contract:
// eligibility and plan() are pure functions of their inputs — no RNG, no
// metering, no clock — so protocol selection can never perturb wire bytes
// except by choosing a different (fully planned) path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chunking/rsync.hpp"
#include "client/service_profile.hpp"
#include "storage/cloud.hpp"
#include "store/content_ref.hpp"
#include "util/content_cache.hpp"

namespace cloudsync {

/// A memoized IDS plan: the delta against one specific old version plus the
/// identity of its serialized wire form. Streaming planning never builds the
/// wire buffer — literal ops reference the new file's rope, and `wire_size` /
/// `wire_hash` (exactly serialize_delta's length and content_hash64) key the
/// wire-payload memo instead. Legacy whole-file planning additionally keeps
/// the materialized buffer in `wire`.
struct delta_blueprint {
  file_delta delta;
  byte_buffer wire;             ///< whole_file_planning only; else empty
  std::uint64_t wire_size = 0;  ///< == serialize_delta(delta).size()
  std::uint64_t wire_hash = 0;  ///< == content_hash64(serialize_delta(delta))
};

/// Last-synced content plus its memoized rsync signature: incremental sync
/// re-signs a shadow only after it actually changes, not on every commit.
/// The signature is shared with the process-wide memo when caching is on.
struct shadow_entry {
  content_ref content;
  std::shared_ptr<const file_signature> sig;  ///< of `content`, lazy
  std::size_t sig_block_size = 0;  ///< block size `sig` was built with
  std::uint64_t sig_salt = 0;  ///< memo salt of `sig` (valid while sig is);
                               ///< recomputing it per delta walked every
                               ///< block of the signature again
};

/// How a planned upload reaches the cloud once its exchange succeeds.
enum class upload_action : std::uint8_t {
  none,   ///< nothing to ship (conflict diverted to a conflicted copy)
  delta,  ///< incremental (rsync) sync of the planned blueprint
  full,   ///< full-file PUT (optionally deduplicated)
};

/// Stable identity of a registered protocol. Values index the selector's
/// pick/correction arrays, so they are small integers; extensions take the
/// next free value.
enum class protocol_id : std::uint8_t {
  full_file = 0,  ///< compressed whole-file PUT
  rsync = 1,      ///< incremental delta sync against the shadow signature
  cdc_dedup = 2,  ///< chunk fingerprints vs the cloud dedup index
};

/// Upper bound on registered protocol ids (array sizing for stats).
inline constexpr std::size_t kMaxProtocols = 8;

const char* to_string(protocol_id id);

/// App-level bytes for one dedup fingerprint on the wire (digest + framing).
inline constexpr std::uint64_t kFingerprintWireBytes = 40;
/// Cloud's per-fingerprint answer ("have it / need it").
inline constexpr std::uint64_t kFingerprintAnswerBytes = 8;

struct upload_plan {
  upload_action act = upload_action::none;
  std::uint64_t payload_up = 0;    ///< wire payload bytes (client → cloud)
  std::uint64_t metadata_up = 0;   ///< fingerprints, delta framing, manifests
  std::uint64_t metadata_down = 0; ///< dedup answers, chunk acks
  std::shared_ptr<const delta_blueprint> blueprint;  ///< when act == delta
  bool dedup_commit = false;  ///< register content in the dedup index
  protocol_id protocol = protocol_id::full_file;  ///< who planned this
  /// Adaptive-mode prediction of (payload_up + metadata_up) at choose time;
  /// < 0 when the selector made no prediction (service-default / forced).
  double predicted_app_up = -1.0;
  /// Duplicate fraction the dedup analysis actually observed (cdc_dedup
  /// plans only; < 0 otherwise). Feeds the selector's hit-rate estimate.
  double observed_dup_fraction = -1.0;
};

/// Everything a protocol may consult while planning, bound per client.
/// Pointers are non-owning and outlive the planning call.
struct planning_env {
  const service_profile* profile = nullptr;
  access_method method = access_method::pc_client;
  cloud* cl = nullptr;
  user_id user = 0;
  content_cache* cache = nullptr;  ///< nullptr = recompute every size
  bool whole_file_planning = false;
  bool journaled = false;          ///< uploads ship through chunked sessions
  std::size_t session_chunk_bytes = 0;  ///< recovery chunk size when journaled

  const method_profile& mp() const { return profile->method(method); }
};

/// One update to plan: the path's current content and its sync context.
struct protocol_update {
  const std::string* path = nullptr;
  const content_ref* content = nullptr;
  bool in_cloud = false;             ///< a live manifest exists for the path
  shadow_entry* shadow = nullptr;    ///< last-synced content, or nullptr
  bool force_full = false;           ///< delta path vetoed (degradation)

  bool has_shadow() const {
    return shadow != nullptr && !shadow->content.empty();
  }
};

/// A sync protocol: decides whether it can handle an update and produces the
/// complete transfer plan (wire payload, metadata both ways, apply action).
class sync_protocol {
 public:
  virtual ~sync_protocol() = default;
  virtual protocol_id id() const = 0;
  virtual const char* name() const = 0;
  /// May this protocol plan this update at all? Must be cheap (no content
  /// walks) — the selector calls it for every registered protocol.
  virtual bool eligible(const planning_env& env,
                        const protocol_update& up) const = 0;
  /// Produce the transfer plan. Only called when eligible() returned true.
  virtual upload_plan plan(const planning_env& env,
                           const protocol_update& up) const = 0;
};

/// Process-wide protocol registry: the open extension point. The three
/// built-ins register on first use in id order (full_file, rsync,
/// cdc_dedup); extensions append via register_protocol before clients run.
/// Iteration order is registration order, which is what makes every
/// selector's scan (and its tiebreaks) deterministic.
class protocol_registry {
 public:
  static protocol_registry& instance();

  /// Append a protocol. Must happen before planning starts (typically at
  /// static init or test setup); the registry never reorders or removes.
  void register_protocol(std::unique_ptr<sync_protocol> proto);

  const sync_protocol* find(protocol_id id) const;
  /// Registration-order view (stable: protocols are never unregistered).
  std::vector<const sync_protocol*> all() const;
  std::size_t size() const;

 private:
  protocol_registry();
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// Today's inline branching, expressed as an ordering over the registry:
/// rsync when eligible, else cdc_dedup when eligible, else full_file.
/// This is the byte-identity anchor — service_default mode must reproduce
/// the pre-registry engine exactly.
const sync_protocol& select_service_default(const planning_env& env,
                                            const protocol_update& up);

// ---------------------------------------------------------------------------
// Shared planning helpers (moved out of sync_client so protocols and the
// cost model use the exact memoized computations the engine used inline).
// ---------------------------------------------------------------------------

/// Wire-payload size of `content` under compression `level`, memoized in
/// env.cache under the same (content hash, size, level) key as the flat
/// overload; in streaming mode a miss walks the rope through the stream
/// sizer, in legacy mode it flattens for the compressor.
std::uint64_t shipped_content_size(const planning_env& env,
                                   const content_ref& content, int level);

/// Wire-payload size of a planned delta's serialized bytes, memoized under
/// the same (wire hash, wire size, level) key the flat overload would use
/// for the materialized buffer.
std::uint64_t shipped_delta_size(const planning_env& env,
                                 const delta_blueprint& bp, int level);

/// The signature of a shadow, computing and memoizing it on first use and
/// after every shadow content change (block size from the profile).
const file_signature& shadow_signature(const planning_env& env,
                                       shadow_entry& sh);

/// Observability for the process-wide incremental-sync memos (rsync
/// signatures and delta blueprints, consulted when planning_env::cache is
/// set): hit/miss counters for bench reports, and a reset for clean
/// before/after measurements.
content_cache_stats signature_memo_stats();
content_cache_stats delta_memo_stats();
void clear_incremental_sync_memos();

}  // namespace cloudsync
