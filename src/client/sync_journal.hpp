// Client-side write-ahead sync journal: the crash-consistency substrate.
//
// Real clients persist a transaction journal (Dropbox's sqlite DB) so that a
// killed process can resume or discard in-flight work instead of restarting
// every transfer from scratch — the paper's §5 restart behaviour (Box and
// Ubuntu One re-sending entire files after a disruption) is exactly what this
// layer avoids. Here the journal models that durable local store: it is owned
// by the experiment harness (like memfs) and therefore survives the injected
// client crashes of the crash-point harness, while the sync client's
// in-memory state (dirty set, shadows, connection) dies with the process.
//
// Record lifecycle (enforced; invalid transitions throw std::logic_error):
//
//   begin() ─▶ planned ─▶ in_flight ─▶ committed ─▶ (checkpoint drops it)
//                  │           │
//                  │           └─▶ aborted   (retry budget exhausted)
//                  └─▶ aborted
//
// The recovery pass (sync_client::recover) reconciles open records against
// the metadata service: `planned` and `aborted` records are discarded (the
// startup rescan re-queues the path), `in_flight` records are resumed through
// their server session when resume is enabled, or discarded and re-planned
// when it is not. Cumulative per-path commit counters survive checkpoints so
// the invariant checker can prove no update was applied twice.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace cloudsync {

enum class journal_state : std::uint8_t { planned, in_flight, committed,
                                          aborted };
enum class journal_kind : std::uint8_t {
  upload_full,     ///< full-file PUT (optionally deduplicated)
  upload_delta,    ///< incremental (rsync) sync
  remove,          ///< tombstone delete
  batch_manifest,  ///< BDS batch exchange (applies already durable)
};

const char* to_string(journal_state s);
const char* to_string(journal_kind k);

struct journal_record {
  std::uint64_t id = 0;
  std::string path;
  journal_kind kind = journal_kind::upload_full;
  journal_state state = journal_state::planned;
  std::uint64_t payload_bytes = 0;   ///< planned wire payload (all chunks)
  std::uint32_t total_chunks = 0;
  std::uint32_t acked_chunks = 0;    ///< contiguous prefix acked by the server
  std::uint32_t acked_total = 0;     ///< acked chunks incl. out-of-order holes
  /// Per-chunk ack bits (sized total_chunks on first ack). The parallel
  /// transfer scheduler lands chunks out of order across K connections, so a
  /// crash can leave holes behind the prefix; resume re-sends exactly the
  /// unset bits. Serial transfers keep the mask a pure prefix.
  std::vector<std::uint8_t> acked_mask;
  std::uint64_t resume_token = 0;    ///< server upload session (0 = none)
  std::uint64_t base_version = 0;    ///< cloud version the plan was based on
  std::uint64_t content_hash = 0;    ///< identity of the planned local content
  sim_time started_at{};
  std::string note;                  ///< abort reason, recovery disposition

  bool chunk_acked(std::uint32_t index) const {
    return index < acked_mask.size() && acked_mask[index] != 0;
  }
};

/// How a restarted client treats in-flight journal records.
struct recovery_options {
  /// Resume through server sessions (pay only the un-acked suffix plus a
  /// metadata round trip) instead of discarding progress and re-planning.
  bool resume = true;
  /// Ranged-upload granularity: the wire payload is shipped and acked in
  /// chunks of this many bytes, each a recoverable unit of progress.
  std::size_t chunk_bytes = 64 * 1024;
};

class sync_journal {
 public:
  /// Open a new record in state `planned`; returns its transaction id.
  /// Supersedes (erases) any earlier aborted record for the same path — the
  /// abort stays observable until the path is re-attempted, no longer.
  std::uint64_t begin(std::string path, journal_kind kind,
                      std::uint64_t payload_bytes, std::uint32_t total_chunks,
                      std::uint64_t base_version, std::uint64_t content_hash,
                      sim_time now);

  void set_resume_token(std::uint64_t id, std::uint64_t token);
  void mark_in_flight(std::uint64_t id);
  /// Record that chunk `index` was acked. Acks may arrive out of order
  /// (striped transfers); re-acking a chunk or acking past total_chunks
  /// throws.
  void ack_chunk(std::uint64_t id, std::uint32_t index);
  void commit(std::uint64_t id);
  void abort(std::uint64_t id, std::string reason);

  const journal_record* find(std::uint64_t id) const;
  /// Records recovery must resolve (planned / in_flight / aborted), id order.
  std::vector<journal_record> open_records() const;
  /// Drop a record recovery has resolved (rolled forward or discarded).
  void erase(std::uint64_t id);
  /// Drop committed records (bounded growth); returns how many were dropped.
  std::size_t checkpoint();

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  // Durable cumulative counters — survive checkpoint() and crashes.
  std::uint64_t begun_count() const { return begun_; }
  std::uint64_t committed_count() const { return committed_; }
  std::uint64_t aborted_count() const { return aborted_; }
  /// Committed transactions (uploads + removes) for one path: the invariant
  /// checker matches this against the cloud-side manifest version to prove
  /// no update was lost or applied twice.
  std::uint64_t commits_for(const std::string& path) const;

  /// Keep a human-readable transition log (journal_dump, debugging failed
  /// bench cells). Off by default — tracing allocates per transition.
  void set_trace(bool on) { trace_enabled_ = on; }
  const std::vector<std::string>& trace() const { return trace_; }

  /// Pretty-print the live records (txn id, path, kind, state, chunk
  /// progress, resume token) plus the cumulative counters.
  std::string dump() const;

 private:
  journal_record& must_get(std::uint64_t id);
  void note_transition(const journal_record& rec, const char* what);

  std::map<std::uint64_t, journal_record> records_;
  std::map<std::string, std::uint64_t> commits_by_path_;
  std::uint64_t next_id_ = 1;
  std::uint64_t begun_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  bool trace_enabled_ = false;
  std::vector<std::string> trace_;
};

}  // namespace cloudsync
