#include "client/protocol_cost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "pipeline/byte_pipeline.hpp"

namespace cloudsync {

namespace {

/// The incompressibility probe constants of wire_payload_size, mirrored so
/// the prediction takes the same fast path the sizer will.
constexpr double kProbeMinBytes = 4096.0;
constexpr double kProbeRatioCutoff = 1.05;

/// Samples beyond which the raw error vector stops growing (the histogram
/// and running mean keep counting).
constexpr std::size_t kMaxErrorSamples = 1 << 16;

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

const char* to_string(protocol_mode m) {
  switch (m) {
    case protocol_mode::service_default: return "service_default";
    case protocol_mode::forced: return "forced";
    case protocol_mode::adaptive: return "adaptive";
  }
  return "mode?";
}

std::uint64_t predicted_delta_frame_bytes(std::uint64_t file_size,
                                          std::size_t block_size,
                                          double similarity) {
  const std::uint64_t block = block_size == 0 ? 1 : block_size;
  std::uint64_t n = 2 + varint_size(block) + varint_size(file_size);
  if (file_size == 0) return n + varint_size(0) + 4;

  const std::uint64_t nblocks = (file_size + block - 1) / block;
  const double sim = std::clamp(similarity, 0.0, 1.0);
  const std::uint64_t m = std::min<std::uint64_t>(
      nblocks, static_cast<std::uint64_t>(
                   std::llround(sim * static_cast<double>(nblocks))));
  const std::uint64_t matched = std::min<std::uint64_t>(file_size, m * block);
  const std::uint64_t literal = file_size - matched;

  if (m == 0) {
    // One literal op carrying the whole file.
    return n + varint_size(1) + 1 + varint_size(literal) + literal + 4;
  }
  if (literal == 0) {
    // One coalesced copy op spanning every block.
    return n + varint_size(1) + 1 + varint_size(0) + varint_size(nblocks) + 4;
  }

  // Scattered in-place edits: k replaced blocks, each its own literal run,
  // interleaved with coalesced copy runs of the surviving blocks. This is
  // the exact frame of an evenly-spaced block-aligned edit; anything messier
  // is absorbed by calibration.
  const std::uint64_t k = nblocks - m;
  const std::uint64_t copy_runs = std::min<std::uint64_t>(k + 1, m);
  const std::uint64_t lit_runs = k;
  n += varint_size(copy_runs + lit_runs);
  const std::uint64_t lit_base = literal / lit_runs;
  const std::uint64_t lit_extra = literal % lit_runs;
  for (std::uint64_t i = 0; i < lit_runs; ++i) {
    const std::uint64_t len = lit_base + (i < lit_extra ? 1 : 0);
    n += 1 + varint_size(len) + len;
  }
  const std::uint64_t copy_base = m / copy_runs;
  const std::uint64_t copy_extra = m % copy_runs;
  std::uint64_t cursor = 0;  // old-file block index of the next copy run
  for (std::uint64_t r = 0; r < copy_runs; ++r) {
    const std::uint64_t cnt = copy_base + (r < copy_extra ? 1 : 0);
    n += 1 + varint_size(cursor) + varint_size(cnt);
    cursor += cnt + 1;  // skip the edited block between runs
  }
  return n + 4;  // CRC-32 trailer
}

double predicted_compressed_bytes(double bytes, double entropy_bits_per_byte,
                                  int level) {
  if (level <= 0 || bytes <= 0) return bytes;
  const double entropy = std::clamp(entropy_bits_per_byte, 0.0, 8.0);
  const double ratio = entropy <= 0.125 ? 64.0 : 8.0 / entropy;
  if (bytes >= kProbeMinBytes && ratio < kProbeRatioCutoff) {
    return bytes;  // the sizer's incompressibility fast path returns raw
  }
  // Order-0 entropy coding estimate with an LZ token floor: even an
  // all-zeros stream pays match headers, so the model never predicts
  // (near-)free.
  double comp = bytes * (entropy / 8.0);
  comp = std::max(comp, bytes / 64.0 + 16.0);
  return std::min(comp, bytes);
}

update_features extract_update_features(
    const planning_env& env, const protocol_update& up,
    const std::unordered_set<std::uint64_t>& synced_hashes,
    double dedup_hit_ewma) {
  update_features f;
  const content_ref& content = *up.content;
  f.size = content.size();
  f.content_hash = content.hash64();
  f.whole_file_duplicate = synced_hashes.contains(f.content_hash);
  f.dedup_hit_prob = f.whole_file_duplicate
                         ? 1.0
                         : std::clamp(dedup_hit_ewma, 0.0, 1.0);
  f.block_size = env.profile->delta_chunk_size;
  f.has_shadow = up.has_shadow() && up.in_cloud && !up.force_full &&
                 env.mp().incremental_sync;

  content_request req;
  req.entropy = true;
  if (f.has_shadow && f.size > 0) req.block_weak = f.block_size;
  const content_report rep = analyze_content(content, req);
  f.entropy_bits_per_byte = f.size > 0 ? rep.entropy_bits_per_byte : 0.0;

  if (f.has_shadow) {
    f.shadow_size = up.shadow->content.size();
    const file_signature& sig = shadow_signature(env, *up.shadow);
    // Multiset match of the new file's per-block weak sums against the
    // shadow signature: a cheap, single-pass stand-in for the rolling-match
    // fraction the real delta will find. Fixed-grid matching underestimates
    // under insertions; the calibration loop absorbs that bias.
    std::unordered_map<std::uint32_t, std::uint32_t> budget;
    for (const block_signature& b : sig.blocks) ++budget[b.weak];
    std::size_t matched = 0;
    for (const std::uint32_t w : rep.block_weak) {
      const auto it = budget.find(w);
      if (it != budget.end() && it->second > 0) {
        --it->second;
        ++matched;
      }
    }
    f.similarity = rep.block_weak.empty()
                       ? 0.0
                       : static_cast<double>(matched) /
                             static_cast<double>(rep.block_weak.size());
  }
  return f;
}

cost_prediction predict_protocol_cost(protocol_id id,
                                      const update_features& f,
                                      const planning_env& env) {
  const method_profile& mp = env.mp();
  const int level = mp.upload_compression_level;
  const double ppm = mp.per_payload_metadata;
  cost_prediction p;

  const auto rounds_for = [&](double payload) {
    // Journaled uploads ship through a resumable session: open + one
    // exchange per chunk + finalize; plain uploads are one exchange.
    if (!env.journaled || env.session_chunk_bytes == 0) return 1.0;
    return 2.0 + std::ceil(payload /
                           static_cast<double>(env.session_chunk_bytes));
  };

  switch (id) {
    case protocol_id::full_file: {
      const double payload = predicted_compressed_bytes(
          static_cast<double>(f.size), f.entropy_bits_per_byte, level);
      p.app_up = payload * (1.0 + ppm);
      p.round_trips = rounds_for(payload);
      p.feasible = true;
      return p;
    }
    case protocol_id::rsync: {
      if (!f.has_shadow) return p;  // infeasible
      const double wire = static_cast<double>(predicted_delta_frame_bytes(
          f.size, f.block_size, f.similarity));
      // The frame is mostly fresh literal bytes; its compressibility tracks
      // the file's entropy.
      const double payload =
          predicted_compressed_bytes(wire, f.entropy_bits_per_byte, level);
      p.app_up = payload * (1.0 + ppm);
      p.round_trips = rounds_for(payload);
      p.feasible = true;
      return p;
    }
    case protocol_id::cdc_dedup: {
      const dedup_policy& policy = env.cl->dedup().policy();
      if (!mp.dedup_enabled || policy.granularity == dedup_granularity::none) {
        return p;
      }
      const double fps = static_cast<double>(
          expected_fingerprint_count(policy, f.size));
      const double dup = std::clamp(f.dedup_hit_prob, 0.0, 1.0);
      const double new_bytes = static_cast<double>(f.size) * (1.0 - dup);
      const double payload = predicted_compressed_bytes(
          new_bytes, f.entropy_bits_per_byte, level);
      p.app_up = payload * (1.0 + ppm) +
                 fps * static_cast<double>(kFingerprintWireBytes);
      p.app_down = fps * static_cast<double>(kFingerprintAnswerBytes);
      p.round_trips = rounds_for(payload);
      p.feasible = true;
      return p;
    }
  }
  return p;
}

double protocol_selector_stats::median_abs_rel_error() const {
  if (abs_rel_errors.empty()) return 0.0;
  std::vector<double> v = abs_rel_errors;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  return v[mid];
}

protocol_selector::protocol_selector(protocol_options opts, link_config link)
    : opts_(opts), link_(link) {}

const sync_protocol& protocol_selector::choose(const planning_env& env,
                                               const protocol_update& up,
                                               selector_pick* pick) {
  const sync_protocol* chosen = nullptr;
  selector_pick out;

  if (opts_.mode == protocol_mode::forced) {
    const sync_protocol* forced =
        protocol_registry::instance().find(opts_.forced);
    if (forced != nullptr && forced->eligible(env, up)) chosen = forced;
    // Ineligible forced protocol: fall through to the service default so a
    // forced run can always ship (e.g. rsync forced but no shadow yet).
  } else if (opts_.mode == protocol_mode::adaptive) {
    const update_features f =
        extract_update_features(env, up, synced_hashes_, dedup_hit_ewma_);
    double best = std::numeric_limits<double>::infinity();
    for (const sync_protocol* proto : protocol_registry::instance().all()) {
      if (!proto->eligible(env, up)) continue;
      cost_prediction c = predict_protocol_cost(proto->id(), f, env);
      if (!c.feasible) continue;  // extension protocol without a model
      const double corr =
          stats_.correction[static_cast<std::size_t>(proto->id())];
      c.app_up *= corr;
      c.app_down *= corr;
      const double score = c.score(link_, opts_.rtt_cost_weight);
      // Strict < keeps the first (lowest-id, registration-order) protocol
      // on ties — the deterministic tiebreak.
      if (score < best) {
        best = score;
        chosen = proto;
        out.predicted = true;
        out.predicted_app_up = c.app_up;
      }
    }
  }

  if (chosen == nullptr) chosen = &select_service_default(env, up);
  out.id = chosen->id();
  ++stats_.picks[static_cast<std::size_t>(chosen->id())];
  if (pick != nullptr) *pick = out;
  return *chosen;
}

void protocol_selector::observe(const upload_plan& plan,
                                std::uint64_t content_hash,
                                std::uint64_t actual_app_up) {
  if (opts_.mode != protocol_mode::adaptive) return;
  // Client-side knowledge real clients have: the hashes of everything this
  // client successfully synced (whole-file duplicate detection) and the
  // duplicate fraction the dedup protocol actually found (chunk-hit EWMA).
  synced_hashes_.insert(content_hash);
  if (plan.observed_dup_fraction >= 0.0) {
    dedup_hit_ewma_ = have_dedup_obs_
                          ? 0.5 * dedup_hit_ewma_ +
                                0.5 * plan.observed_dup_fraction
                          : plan.observed_dup_fraction;
    have_dedup_obs_ = true;
  }
  if (plan.predicted_app_up < 0.0) return;  // no prediction to score

  const double actual = static_cast<double>(std::max<std::uint64_t>(
      actual_app_up, 1));
  const double err = std::abs(plan.predicted_app_up - actual) / actual;
  static constexpr double kBucketEdges[protocol_selector_stats::kErrorBuckets -
                                       1] = {0.05, 0.10, 0.15,
                                             0.25, 0.50, 1.00};
  std::size_t bucket = protocol_selector_stats::kErrorBuckets - 1;
  for (std::size_t i = 0; i + 1 < protocol_selector_stats::kErrorBuckets;
       ++i) {
    if (err < kBucketEdges[i]) {
      bucket = i;
      break;
    }
  }
  ++stats_.error_hist[bucket];
  ++stats_.observations;
  stats_.abs_rel_error_sum += err;
  if (stats_.abs_rel_errors.size() < kMaxErrorSamples) {
    stats_.abs_rel_errors.push_back(err);
  }
  if (opts_.calibration_gain > 0 && plan.predicted_app_up > 0) {
    const double ratio =
        std::clamp(actual / plan.predicted_app_up, 0.25, 4.0);
    double& c = stats_.correction[static_cast<std::size_t>(plan.protocol)];
    c = std::clamp(c * std::pow(ratio, opts_.calibration_gain), 0.1, 10.0);
  }
}

}  // namespace cloudsync
