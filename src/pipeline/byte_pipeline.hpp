// Fused single-pass content pipeline.
//
// Every layer of the simulator wants something different from the same
// bytes: the dedup engine wants chunk boundaries and SHA-256 fingerprints,
// incremental sync wants adler weak sums and MD5 strong sums, the wire
// format wants CRC-32, the compression planner wants a size estimate. Run
// separately, each stage streams the whole buffer through the core again.
// `byte_pipeline` walks the content once, in cache-sized tiles, and feeds
// every enabled kernel from the tile while it is hot — no intermediate
// vectors, no repeated end-to-end passes.
//
// Determinism contract: every output is bit-identical to the corresponding
// standalone kernel (sha256()/md5()/sha1()/crc32()/weak_checksum()/
// content_defined_chunks()/fixed_chunks()), which the test suite asserts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chunking/cdc.hpp"
#include "chunking/fixed_chunker.hpp"
#include "store/content_ref.hpp"
#include "util/bytes.hpp"
#include "util/digest.hpp"
#include "util/md5.hpp"
#include "util/sha1.hpp"
#include "util/sha256.hpp"

namespace cloudsync {

/// Which stages the pass should run. Disabled stages cost nothing.
struct content_request {
  bool sha256 = false;
  bool md5 = false;
  bool sha1 = false;
  bool crc32 = false;
  bool weak = false;  ///< whole-buffer rsync weak checksum (adler a/b sums)
  /// Per-block rsync weak checksums over a fixed grid of this block size:
  /// the similarity probe of the protocol cost model. Each value matches
  /// weak_checksum() of the corresponding fixed block exactly.
  std::optional<std::size_t> block_weak;
  /// Byte-histogram Huffman entropy, the streamable compressed-size
  /// estimate (bits assigned by an ideal order-0 coder).
  bool entropy = false;
  std::optional<cdc_params> cdc;           ///< gear CDC boundaries
  std::optional<std::size_t> fixed_block;  ///< fixed boundaries
};

/// Everything the pass produced. Only fields whose stage was requested are
/// meaningful.
struct content_report {
  sha256_digest sha256{};
  md5_digest md5{};
  sha1_digest sha1{};
  std::uint32_t crc32 = 0;
  std::uint32_t weak = 0;
  std::vector<std::uint32_t> block_weak;  ///< one per fixed block, in order
  double entropy_bits_per_byte = 0.0;
  std::uint64_t total_bytes = 0;
  std::vector<chunk_ref> cdc_chunks;
  std::vector<chunk_ref> fixed_chunks;
};

/// Streaming stage machine: feed() the content in arrival order (any tile
/// sizes, including a single whole-buffer call), then finish() exactly once.
class byte_pipeline {
 public:
  explicit byte_pipeline(content_request req);

  /// Fold one tile of content into every enabled stage.
  void feed(byte_view tile);

  /// Flush chunker tails and finalize digests.
  content_report finish();

 private:
  void feed_cdc(byte_view tile);

  content_request req_;
  content_report out_;

  sha256_hasher sha256_;
  md5_hasher md5_;
  sha1_hasher sha1_;
  std::uint32_t crc_ = 0;
  std::uint32_t weak_a_ = 0, weak_b_ = 0;
  std::uint32_t bw_a_ = 0, bw_b_ = 0;  ///< block_weak accumulator
  std::size_t bw_len_ = 0;             ///< bytes into the current block
  std::uint64_t hist_[256] = {};

  // Gear CDC chunk-in-progress (offsets are absolute in the stream).
  std::uint64_t cdc_start_ = 0;
  std::uint64_t cdc_len_ = 0;  ///< bytes consumed into the current chunk
  std::uint64_t cdc_hash_ = 0;
  std::uint64_t cdc_mask_ = 0;
  std::uint64_t cdc_skip_ = 0;  ///< min-size hash skip (see cdc.cpp)

  bool finished_ = false;
};

/// One-shot convenience over a complete buffer.
content_report analyze_content(byte_view data, const content_request& req);

/// Rope entry point: feeds the rope's segments in place — no flatten. The
/// pipeline's tiling contract makes every output bit-identical to the flat
/// call on the same logical bytes.
content_report analyze_content(const content_ref& data,
                               const content_request& req);

/// Fused fingerprinting of a precomputed chunk layout: each chunk is walked
/// once, producing the same digests as sha256(slice(data, c)) per chunk.
std::vector<sha256_digest> chunk_digests(byte_view data,
                                         const std::vector<chunk_ref>& layout);

/// Rope variant: streams each chunk's range over the rope segments.
std::vector<sha256_digest> chunk_digests(const content_ref& data,
                                         const std::vector<chunk_ref>& layout);

}  // namespace cloudsync
