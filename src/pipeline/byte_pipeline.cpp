#include "pipeline/byte_pipeline.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/adler32.hpp"
#include "util/crc32.hpp"

namespace cloudsync {

namespace {

/// Tile size for the one-shot walk: big enough to amortize per-stage call
/// overhead, small enough that a tile fed to five kernels stays in L1/L2.
constexpr std::size_t kTile = 64 * 1024;

}  // namespace

byte_pipeline::byte_pipeline(content_request req) : req_(std::move(req)) {
  if (req_.cdc) {
    const cdc_params& p = *req_.cdc;
    assert(p.min_size > 0 && p.min_size <= p.avg_size &&
           p.avg_size <= p.max_size);
    assert((p.avg_size & (p.avg_size - 1)) == 0 &&
           "avg_size must be a power of two");
    cdc_mask_ = p.avg_size - 1;
    // Same min-size skip as content_defined_chunks(): the masked cut test
    // reads only the low log2(avg_size) bits of the gear hash, which depend
    // only on the last log2(avg_size) bytes, so hashing may start there.
    const std::uint64_t mask_bits = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(std::countr_zero(p.avg_size)), 1);
    cdc_skip_ = p.min_size > mask_bits ? p.min_size - mask_bits : 0;
  }
}

void byte_pipeline::feed_cdc(byte_view tile) {
  const cdc_params& p = *req_.cdc;
  const std::uint64_t* gear = gear_table();
  std::size_t i = 0;
  while (i < tile.size()) {
    // Phase 1: skip ahead — bytes below the hash-start offset only count.
    if (cdc_len_ < cdc_skip_) {
      const std::uint64_t take = std::min<std::uint64_t>(
          cdc_skip_ - cdc_len_, tile.size() - i);
      cdc_len_ += take;
      i += static_cast<std::size_t>(take);
      continue;
    }
    // Phase 2: hash until a cut fires or the max size is reached.
    std::uint64_t h = cdc_hash_;
    std::uint64_t len = cdc_len_;
    bool cut = false;
    while (i < tile.size()) {
      h = (h << 1) + gear[tile[i]];
      ++len;
      ++i;
      if (len >= p.min_size && (h & cdc_mask_) == 0) {
        cut = true;
        break;
      }
      if (len >= p.max_size) {
        cut = true;
        break;
      }
    }
    cdc_hash_ = h;
    cdc_len_ = len;
    if (cut) {
      out_.cdc_chunks.push_back({static_cast<std::size_t>(cdc_start_),
                                 static_cast<std::size_t>(cdc_len_)});
      cdc_start_ += cdc_len_;
      cdc_len_ = 0;
      cdc_hash_ = 0;
    }
  }
}

void byte_pipeline::feed(byte_view tile) {
  assert(!finished_);
  if (tile.empty()) return;
  out_.total_bytes += tile.size();
  if (req_.sha256) sha256_.update(tile);
  if (req_.md5) md5_.update(tile);
  if (req_.sha1) sha1_.update(tile);
  if (req_.crc32) crc_ = cloudsync::crc32(tile, crc_);
  if (req_.weak) weak_accumulate(tile, weak_a_, weak_b_);
  if (req_.block_weak) {
    // Split the tile at fixed-block boundaries so each block's accumulator
    // sees exactly its own bytes — identical to weak_checksum() per block.
    const std::size_t bs = *req_.block_weak;
    std::size_t i = 0;
    while (i < tile.size()) {
      const std::size_t take = std::min(bs - bw_len_, tile.size() - i);
      weak_accumulate(tile.subspan(i, take), bw_a_, bw_b_);
      bw_len_ += take;
      i += take;
      if (bw_len_ == bs) {
        out_.block_weak.push_back((bw_b_ << 16) | (bw_a_ & 0xffffu));
        bw_a_ = bw_b_ = 0;
        bw_len_ = 0;
      }
    }
  }
  if (req_.entropy) {
    for (const std::uint8_t b : tile) ++hist_[b];
  }
  if (req_.cdc) feed_cdc(tile);
}

content_report byte_pipeline::finish() {
  if (finished_) throw std::logic_error("byte_pipeline::finish called twice");
  finished_ = true;
  if (req_.sha256) out_.sha256 = sha256_.finish();
  if (req_.md5) out_.md5 = md5_.finish();
  if (req_.sha1) out_.sha1 = sha1_.finish();
  if (req_.crc32) out_.crc32 = crc_;
  if (req_.weak) out_.weak = (weak_b_ << 16) | (weak_a_ & 0xffffu);
  if (req_.block_weak && bw_len_ > 0) {
    out_.block_weak.push_back((bw_b_ << 16) | (bw_a_ & 0xffffu));
  }
  if (req_.entropy && out_.total_bytes > 0) {
    double bits = 0.0;
    for (const std::uint64_t n : hist_) {
      if (n == 0) continue;
      const double pr = static_cast<double>(n) /
                        static_cast<double>(out_.total_bytes);
      bits -= static_cast<double>(n) * std::log2(pr);
    }
    out_.entropy_bits_per_byte = bits / static_cast<double>(out_.total_bytes);
  }
  if (req_.cdc && cdc_len_ > 0) {
    out_.cdc_chunks.push_back({static_cast<std::size_t>(cdc_start_),
                               static_cast<std::size_t>(cdc_len_)});
  }
  if (req_.fixed_block) {
    // Boundaries are pure arithmetic — no byte walking needed.
    const std::size_t bs = *req_.fixed_block;
    assert(bs > 0);
    const std::size_t n = static_cast<std::size_t>(out_.total_bytes);
    out_.fixed_chunks.reserve(n / bs + 1);
    for (std::size_t off = 0; off < n; off += bs) {
      out_.fixed_chunks.push_back({off, std::min(bs, n - off)});
    }
  }
  return std::move(out_);
}

content_report analyze_content(byte_view data, const content_request& req) {
  byte_pipeline pipe(req);
  for (std::size_t off = 0; off < data.size(); off += kTile) {
    pipe.feed(data.subspan(off, std::min(kTile, data.size() - off)));
  }
  return pipe.finish();
}

std::vector<sha256_digest> chunk_digests(
    byte_view data, const std::vector<chunk_ref>& layout) {
  std::vector<sha256_digest> out;
  out.reserve(layout.size());
  for (const chunk_ref& c : layout) {
    out.push_back(sha256(slice(data, c)));
  }
  return out;
}

content_report analyze_content(const content_ref& data,
                               const content_request& req) {
  byte_pipeline pipe(req);
  // Segments arrive in logical order; the tiling contract makes any split
  // equivalent, so feeding rope segments directly needs no flatten.
  data.walk([&](byte_view seg) {
    for (std::size_t off = 0; off < seg.size(); off += kTile) {
      pipe.feed(seg.subspan(off, std::min(kTile, seg.size() - off)));
    }
  });
  return pipe.finish();
}

std::vector<sha256_digest> chunk_digests(
    const content_ref& data, const std::vector<chunk_ref>& layout) {
  std::vector<sha256_digest> out;
  out.reserve(layout.size());
  for (const chunk_ref& c : layout) {
    sha256_hasher h;
    data.walk_range(c.offset, c.size,
                    [&](byte_view seg) { h.update(seg); });
    out.push_back(h.finish());
  }
  return out;
}

}  // namespace cloudsync
