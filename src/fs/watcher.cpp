#include "fs/watcher.hpp"

namespace cloudsync {

watcher::watcher(memfs& fs) {
  // The watcher must outlive the filesystem it subscribes to, or at least
  // never be destroyed while events can still fire — same lifetime contract
  // as any memfs observer.
  fs.subscribe([this](const fs_event& ev) {
    queue_.push_back(ev);
    ++observed_;
  });
}

std::vector<fs_event> watcher::drain() {
  std::vector<fs_event> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

const fs_event* watcher::peek() const {
  return queue_.empty() ? nullptr : &queue_.front();
}

}  // namespace cloudsync
