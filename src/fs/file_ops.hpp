// Controlled file-operation generators — the synthetic workloads of the
// paper's Experiments 1-6 (§3.2 "Controlled file operations").
#pragma once

#include <cstdint>
#include <string>

#include "fs/memfs.hpp"
#include "util/content_cache.hpp"
#include "util/rng.hpp"

namespace cloudsync {

/// "Highly compressed file of Z bytes": incompressible random content
/// (Experiments 1/2/3/5).
byte_buffer make_compressed_file(rng& r, std::size_t z);

/// "Text file filled with random English words" of X bytes (Experiment 4).
byte_buffer make_text_file(rng& r, std::size_t x);

/// Memoized variants: same generator state and size reproduce the same bytes
/// AND the same post-call generator state (restored on a cache hit), so a hit
/// is observationally identical to re-running the generator. Experiment grids
/// replay the same seeds across services, which makes generation itself a hot
/// path; experiment_env routes through these when content caching is on.
byte_buffer make_compressed_file_cached(rng& r, std::size_t z);
byte_buffer make_text_file_cached(rng& r, std::size_t x);

/// Observability for the process-wide generation memo behind the _cached
/// variants: hit/miss counters for bench reports, and a reset for clean
/// before/after measurements.
content_cache_stats generation_memo_stats();
void clear_generation_memo();

/// Modify one random byte in place (Experiment 3). Guarantees the byte
/// actually changes. Returns the modified offset.
std::size_t modify_random_byte(memfs& fs, const std::string& path, rng& r,
                               sim_time now);

/// Append `n` random (incompressible) bytes (Experiment 6's "X KB/X sec").
void append_random(memfs& fs, const std::string& path, rng& r, std::size_t n,
                   sim_time now);

/// Self-duplication from Algorithm 1: f2 = f1 + f1.
byte_buffer self_duplicate(byte_view f1);

}  // namespace cloudsync
