#include "fs/memfs.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudsync {

const char* to_string(fs_event::kind k) {
  switch (k) {
    case fs_event::kind::created: return "created";
    case fs_event::kind::modified: return "modified";
    case fs_event::kind::removed: return "removed";
    case fs_event::kind::renamed: return "renamed";
  }
  return "?";
}

memfs::node& memfs::must_get(std::string_view path) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::invalid_argument("memfs: no such file: " + std::string(path));
  }
  return it->second;
}

const memfs::node& memfs::must_get(std::string_view path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::invalid_argument("memfs: no such file: " + std::string(path));
  }
  return it->second;
}

void memfs::notify(const fs_event& ev) {
  for (const auto& [token, obs] : observers_) obs(ev);
}

void memfs::unsubscribe(std::size_t token) {
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->first == token) {
      observers_.erase(it);
      return;
    }
  }
}

void memfs::create(const std::string& path, content_ref content,
                   sim_time now) {
  if (files_.contains(path)) {
    throw std::invalid_argument("memfs: already exists: " + path);
  }
  node n;
  n.content = std::move(content);
  n.mtime = now;
  n.version = 1;
  const std::uint64_t sz = n.content.size();
  files_.emplace(path, std::move(n));
  paths_.invalidate();
  notify({fs_event::kind::created, path, {}, now, sz});
}

void memfs::write(const std::string& path, content_ref content,
                  sim_time now) {
  node& n = must_get(path);
  n.content = std::move(content);
  n.mtime = now;
  ++n.version;
  notify({fs_event::kind::modified, path, {}, now, n.content.size()});
}

void memfs::append(const std::string& path, byte_view data, sim_time now) {
  node& n = must_get(path);
  n.content = n.content.appended(data);
  n.mtime = now;
  ++n.version;
  notify({fs_event::kind::modified, path, {}, now, n.content.size()});
}

void memfs::patch(const std::string& path, std::size_t offset, byte_view data,
                  sim_time now) {
  node& n = must_get(path);
  if (offset + data.size() > n.content.size()) {
    throw std::out_of_range("memfs: patch beyond end of file");
  }
  n.content = n.content.patched(offset, data);
  n.mtime = now;
  ++n.version;
  notify({fs_event::kind::modified, path, {}, now, n.content.size()});
}

void memfs::remove(const std::string& path, sim_time now) {
  must_get(path);
  files_.erase(path);
  paths_.invalidate();
  notify({fs_event::kind::removed, path, {}, now, 0});
}

void memfs::rename(const std::string& from, const std::string& to,
                   sim_time now) {
  if (files_.contains(to)) {
    throw std::invalid_argument("memfs: rename target exists: " + to);
  }
  node n = std::move(must_get(from));
  files_.erase(from);
  n.mtime = now;
  const std::uint64_t sz = n.content.size();
  files_.emplace(to, std::move(n));
  paths_.invalidate();
  notify({fs_event::kind::renamed, to, from, now, sz});
}

bool memfs::exists(std::string_view path) const {
  return files_.contains(path);
}

content_ref memfs::read(std::string_view path) const {
  return must_get(path).content;
}

std::uint64_t memfs::size(std::string_view path) const {
  return must_get(path).content.size();
}

sim_time memfs::mtime(std::string_view path) const {
  return must_get(path).mtime;
}

std::uint64_t memfs::version(std::string_view path) const {
  return must_get(path).version;
}

std::vector<std::string> memfs::list() const {
  return paths_.get([this](std::vector<std::string>& out) {
    out.reserve(files_.size());
    for (const auto& [path, _] : files_) out.push_back(path);
  });
}

std::uint64_t memfs::total_bytes() const {
  std::uint64_t t = 0;
  for (const auto& [_, n] : files_) t += n.content.size();
  return t;
}

}  // namespace cloudsync
