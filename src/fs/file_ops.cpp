#include "fs/file_ops.hpp"

#include <memory>
#include <stdexcept>

#include "util/content_cache.hpp"

namespace cloudsync {

byte_buffer make_compressed_file(rng& r, std::size_t z) {
  return random_bytes(r, z);
}

byte_buffer make_text_file(rng& r, std::size_t x) {
  return random_text(r, x);
}

namespace {

/// One memoized generation: the bytes plus the generator state after the run
/// (restored on a hit so replay and recomputation are indistinguishable).
struct generated_file {
  byte_buffer bytes;
  rng_state end_state;
};
using generated_ptr = std::shared_ptr<const generated_file>;

/// Small capacity on purpose: entries can be multi-MiB, and experiment grids
/// only revisit a handful of (seed position, size) pairs per table.
content_memo<generated_ptr>& generation_memo() {
  static content_memo<generated_ptr> memo(32);
  return memo;
}

std::uint64_t state_key(const rng_state& st) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (std::uint64_t w : st.s) h = mix64(h ^ w);
  return h;
}

byte_buffer generate_cached(rng& r, std::size_t n, std::uint64_t kind,
                            byte_buffer (*gen)(rng&, std::size_t)) {
  const generated_ptr g = generation_memo().get_or_compute_keyed(
      state_key(r.state()), n, kind, [&]() -> generated_ptr {
        auto out = std::make_shared<generated_file>();
        out->bytes = gen(r, n);
        out->end_state = r.state();
        return out;
      });
  r.restore(g->end_state);  // no-op after a miss; advances r after a hit
  return g->bytes;          // callers own (and may mutate) their copy
}

}  // namespace

byte_buffer make_compressed_file_cached(rng& r, std::size_t z) {
  return generate_cached(r, z, 1, &random_bytes);
}

byte_buffer make_text_file_cached(rng& r, std::size_t x) {
  return generate_cached(r, x, 2, &random_text);
}

content_cache_stats generation_memo_stats() {
  return generation_memo().stats();
}

void clear_generation_memo() { generation_memo().clear(); }

std::size_t modify_random_byte(memfs& fs, const std::string& path, rng& r,
                               sim_time now) {
  const content_ref content = fs.read(path);
  if (content.empty()) {
    throw std::invalid_argument("modify_random_byte: empty file");
  }
  const std::size_t off = r.uniform(content.size());
  const std::uint8_t current = content.at(off);
  std::uint8_t replacement;
  do {
    replacement = static_cast<std::uint8_t>(r.next());
  } while (replacement == current);
  fs.patch(path, off, byte_view{&replacement, 1}, now);
  return off;
}

void append_random(memfs& fs, const std::string& path, rng& r, std::size_t n,
                   sim_time now) {
  const byte_buffer data = random_bytes(r, n);
  fs.append(path, data, now);
}

byte_buffer self_duplicate(byte_view f1) {
  byte_buffer out;
  out.reserve(f1.size() * 2);
  append(out, f1);
  append(out, f1);
  return out;
}

}  // namespace cloudsync
