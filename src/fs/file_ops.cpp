#include "fs/file_ops.hpp"

#include <stdexcept>

namespace cloudsync {

byte_buffer make_compressed_file(rng& r, std::size_t z) {
  return random_bytes(r, z);
}

byte_buffer make_text_file(rng& r, std::size_t x) {
  return random_text(r, x);
}

std::size_t modify_random_byte(memfs& fs, const std::string& path, rng& r,
                               sim_time now) {
  const byte_view content = fs.read(path);
  if (content.empty()) {
    throw std::invalid_argument("modify_random_byte: empty file");
  }
  const std::size_t off = r.uniform(content.size());
  std::uint8_t replacement;
  do {
    replacement = static_cast<std::uint8_t>(r.next());
  } while (replacement == content[off]);
  fs.patch(path, off, byte_view{&replacement, 1}, now);
  return off;
}

void append_random(memfs& fs, const std::string& path, rng& r, std::size_t n,
                   sim_time now) {
  const byte_buffer data = random_bytes(r, n);
  fs.append(path, data, now);
}

byte_buffer self_duplicate(byte_view f1) {
  byte_buffer out;
  out.reserve(f1.size() * 2);
  append(out, f1);
  append(out, f1);
  return out;
}

}  // namespace cloudsync
