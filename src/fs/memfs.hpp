// In-memory model of the user's sync folder.
//
// Stands in for the client machine's local filesystem: every mutation is
// observable (inotify-style) so the sync client can react, and all content
// lives in memory so experiments are fast and deterministic.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/content_ref.hpp"
#include "util/bytes.hpp"
#include "util/sim_time.hpp"
#include "util/sorted_cache.hpp"
#include "util/string_key.hpp"

namespace cloudsync {

struct fs_event {
  enum class kind : std::uint8_t { created, modified, removed, renamed };
  kind op = kind::created;
  std::string path;
  std::string old_path;  ///< renamed only
  sim_time at{};
  std::uint64_t size_after = 0;  ///< file size following the operation
};

const char* to_string(fs_event::kind k);

class memfs {
 public:
  using observer = std::function<void(const fs_event&)>;

  /// Register a change observer (the sync client's watcher). Multiple
  /// observers are allowed; all receive every event. Returns a token for
  /// unsubscribe().
  std::size_t subscribe(observer obs) {
    observers_.push_back({next_observer_id_, std::move(obs)});
    return next_observer_id_++;
  }

  /// Remove a previously registered observer. The filesystem outlives client
  /// incarnations in the crash harness, so a dying client must detach its
  /// watcher. Unknown tokens are ignored.
  void unsubscribe(std::size_t token);

  // -- Mutations (all notify observers) --------------------------------

  /// Create a new file. Throws std::invalid_argument if it already exists.
  /// The content_ref overload shares the caller's chunks (CoW); the
  /// byte_buffer overload interns the bytes first.
  void create(const std::string& path, content_ref content, sim_time now);
  void create(const std::string& path, byte_buffer content, sim_time now) {
    create(path, content_ref::from_buffer(std::move(content)), now);
  }

  /// Replace the whole content of an existing file.
  void write(const std::string& path, content_ref content, sim_time now);
  void write(const std::string& path, byte_buffer content, sim_time now) {
    write(path, content_ref::from_buffer(std::move(content)), now);
  }

  /// Append bytes to an existing file.
  void append(const std::string& path, byte_view data, sim_time now);

  /// Overwrite bytes starting at `offset` (must lie within the file).
  void patch(const std::string& path, std::size_t offset, byte_view data,
             sim_time now);

  /// Delete a file. Throws std::invalid_argument if missing.
  void remove(const std::string& path, sim_time now);

  /// Rename a file (no overwrite allowed).
  void rename(const std::string& from, const std::string& to, sim_time now);

  // -- Queries -----------------------------------------------------------

  bool exists(std::string_view path) const;
  /// Handle to the current content. Throws if missing. The handle stays valid
  /// across later mutations of the file (it pins the chunks it references) —
  /// unlike the byte_view this used to return, which a mutation could detach.
  content_ref read(std::string_view path) const;
  std::uint64_t size(std::string_view path) const;
  sim_time mtime(std::string_view path) const;
  std::uint64_t version(std::string_view path) const;

  /// All paths, sorted (the map is unordered; callers — rescan, invariant
  /// checks — rely on a stable order).
  std::vector<std::string> list() const;
  std::size_t file_count() const { return files_.size(); }
  std::uint64_t total_bytes() const;

 private:
  struct node {
    content_ref content;
    sim_time mtime{};
    std::uint64_t version = 0;
  };

  node& must_get(std::string_view path);
  const node& must_get(std::string_view path) const;
  void notify(const fs_event& ev);

  /// Hot lookups (read/exists/size on every sync decision) take one hash
  /// probe instead of an O(log n) string-compare walk; string_view lookups
  /// never allocate. list() serves from a generation-keyed sorted snapshot,
  /// invalidated only when the path set changes (create/remove/rename —
  /// content writes keep it valid).
  std::unordered_map<std::string, node, string_key_hash, string_key_eq> files_;
  sorted_snapshot_cache<std::string> paths_;
  std::vector<std::pair<std::size_t, observer>> observers_;
  std::size_t next_observer_id_ = 1;
};

}  // namespace cloudsync
