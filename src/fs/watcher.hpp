// Queued filesystem watcher: an inotify-style consumer interface over
// memfs's push notifications, for components that want to poll a batch of
// events on their own schedule (the sync engine subscribes directly; tools
// and tests often prefer a drainable queue).
#pragma once

#include <deque>
#include <vector>

#include "fs/memfs.hpp"

namespace cloudsync {

class watcher {
 public:
  /// Starts watching immediately. Events raised before construction are not
  /// seen (same contract as inotify).
  explicit watcher(memfs& fs);

  /// Events accumulated since the last drain, oldest first.
  std::vector<fs_event> drain();

  /// Next pending event without consuming it; nullptr if none.
  const fs_event* peek() const;

  std::size_t pending() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Drop everything accumulated so far.
  void clear() { queue_.clear(); }

  /// Total events observed over the watcher's lifetime (drained or not).
  std::uint64_t total_observed() const { return observed_; }

 private:
  std::deque<fs_event> queue_;
  std::uint64_t observed_ = 0;
};

}  // namespace cloudsync
