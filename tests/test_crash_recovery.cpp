// The crash-point harness end to end: forced client crashes at every kill
// site, with resume on and off, must always reconverge and satisfy the full
// invariant suite; resuming must cost strictly fewer bytes than restarting
// from scratch; a journaled transaction that exhausts its retry budget must
// leave an `aborted` journal record behind; and the resumable-session cloud
// API must enforce its own contract.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/experiment.hpp"

namespace cloudsync {
namespace {

experiment_config crash_cfg(bool resume, std::size_t chunk_bytes = 64 * KiB) {
  experiment_config cfg{dropbox()};
  cfg.method = access_method::pc_client;
  cfg.journal = true;
  cfg.recovery.resume = resume;
  cfg.recovery.chunk_bytes = chunk_bytes;
  return cfg;
}

/// Run the full invariant suite for a single-station env and return the
/// report (the per-incarnation meters prove byte conservation).
invariant_report check_all(experiment_env& env, station& st) {
  invariant_report report;
  check_convergence(st.fs, env.the_cloud(), st.user, report);
  check_journal_quiescent(st.journal, env.the_cloud(), report);
  check_no_duplicate_commits(st.journal, env.the_cloud(), st.user, report);
  const traffic_meter aggregate = st.aggregate_meter();
  std::vector<const traffic_meter*> parts;
  for (const traffic_meter& m : st.retired_meters) parts.push_back(&m);
  if (st.client) parts.push_back(&st.client->meter());
  check_meter_conservation(aggregate, parts, report);
  return report;
}

// ---------------------------------------------------------------------------
// Kill-site matrix: every site × {resume on, off} reconverges cleanly.
// ---------------------------------------------------------------------------

struct crash_case {
  crash_site site;
  bool resume;
  int skip;  ///< skip earlier opportunities at the site (mid-chunk progress)
};

std::string case_name(const ::testing::TestParamInfo<crash_case>& info) {
  std::string name = to_string(info.param.site);
  for (char& c : name) {
    if (c == '-' || c == ' ') c = '_';
  }
  return name + (info.param.resume ? "_resume" : "_restart");
}

class CrashKillSite : public ::testing::TestWithParam<crash_case> {};

TEST_P(CrashKillSite, CreationRecoversAndConverges) {
  const crash_case& cc = GetParam();
  experiment_env env(crash_cfg(cc.resume));
  station& st = env.primary();

  // 256 KiB incompressible → a four-chunk upload session at 64 KiB chunks.
  env.faults().force_crash(cc.site, cc.skip);
  st.fs.create("kill/file", env.gen_compressed(256 * KiB), env.clock().now());
  env.settle();

  EXPECT_EQ(st.crashes, 1u);
  EXPECT_EQ(env.faults().crashes_injected(), 1);
  EXPECT_EQ(env.faults().injected(fault_kind::client_crash), 1u);

  // The restarted incarnation converged the cloud to the local content...
  ASSERT_TRUE(env.the_cloud().file_content(0, "kill/file").has_value());
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "kill/file")),
            to_string(st.fs.read("kill/file")));
  // ...and the full invariant suite holds.
  const invariant_report report = check_all(env, st);
  EXPECT_TRUE(report.ok()) << report.summary();

  // Disposition: an in-flight session resumes only when resume is on; a
  // crash before the session opened (after_plan) leaves nothing to resume
  // and the startup rescan re-queues the path.
  if (cc.site == crash_site::after_plan) {
    EXPECT_EQ(st.total_resumes(), 0u);
  } else if (cc.resume) {
    EXPECT_EQ(st.total_resumes(), 1u);
    EXPECT_EQ(st.total_recovery_restarts(), 0u);
  } else {
    EXPECT_EQ(st.total_resumes(), 0u);
    EXPECT_EQ(st.total_recovery_restarts(), 1u);
  }
  // Recovery left no open session behind either way.
  EXPECT_EQ(env.the_cloud().open_session_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, CrashKillSite,
    ::testing::Values(crash_case{crash_site::after_plan, true, 0},
                      crash_case{crash_site::after_plan, false, 0},
                      crash_case{crash_site::mid_chunk, true, 2},
                      crash_case{crash_site::mid_chunk, false, 2},
                      crash_case{crash_site::before_commit, true, 0},
                      crash_case{crash_site::before_commit, false, 0}),
    case_name);

// ---------------------------------------------------------------------------
// Resume efficiency: continuing a session is strictly cheaper than
// re-uploading from scratch (the paper's §5 restart waste, avoided).
// ---------------------------------------------------------------------------

std::uint64_t crashed_creation_traffic(bool resume, crash_site site,
                                       int skip) {
  experiment_env env(crash_cfg(resume));
  station& st = env.primary();
  env.faults().force_crash(site, skip);
  st.fs.create("kill/file", env.gen_compressed(256 * KiB), env.clock().now());
  env.settle();
  EXPECT_EQ(st.crashes, 1u);
  EXPECT_TRUE(check_all(env, st).ok());
  return st.aggregate_meter().total();
}

TEST(CrashResume, ResumedBytesBelowFullRestartBytes) {
  // Crash before chunk 2 of 4: half the payload is acked. The resumed run
  // pays the un-acked half plus a query round trip; the restarted run pays
  // the whole payload again.
  const std::uint64_t resumed =
      crashed_creation_traffic(true, crash_site::mid_chunk, 2);
  const std::uint64_t restarted =
      crashed_creation_traffic(false, crash_site::mid_chunk, 2);
  EXPECT_LT(resumed, restarted);
  // The saving is at least the two already-acked 64 KiB chunks minus the
  // recovery round trip — call it one chunk to be safe.
  EXPECT_GT(restarted - resumed, 64 * KiB);
}

TEST(CrashResume, BeforeCommitResumePaysOnlyControlTraffic) {
  // All chunks acked: the resumed run re-sends no payload at all.
  const std::uint64_t resumed =
      crashed_creation_traffic(true, crash_site::before_commit, 0);
  const std::uint64_t restarted =
      crashed_creation_traffic(false, crash_site::before_commit, 0);
  EXPECT_LT(resumed + 192 * KiB, restarted);
}

TEST(CrashResume, ResumeTrafficIsMeteredInItsOwnCategory) {
  experiment_env env(crash_cfg(true));
  station& st = env.primary();
  env.faults().force_crash(crash_site::mid_chunk, 2);
  st.fs.create("kill/file", env.gen_compressed(256 * KiB), env.clock().now());
  env.settle();
  const traffic_meter aggregate = st.aggregate_meter();
  // Session control bytes (open / chunk acks / finalize / recovery query)
  // live under traffic_category::resume, in both directions.
  EXPECT_GT(aggregate.get(direction::up, traffic_category::resume), 0u);
  EXPECT_GT(aggregate.get(direction::down, traffic_category::resume), 0u);
}

// ---------------------------------------------------------------------------
// Delta-sync transactions crash and resume too (shadow restored from the
// cloud's current version before re-planning).
// ---------------------------------------------------------------------------

TEST(CrashResume, DeltaUploadResumesMidChunk) {
  // Small chunks so even a one-byte edit's delta spans several wire chunks.
  experiment_env env(crash_cfg(true, /*chunk_bytes=*/2 * KiB));
  station& st = env.primary();
  st.fs.create("kill/delta", env.gen_compressed(256 * KiB), env.clock().now());
  env.settle();
  ASSERT_EQ(st.crashes, 0u);

  env.faults().force_crash(crash_site::mid_chunk, 1);
  modify_random_byte(st.fs, "kill/delta", env.random(), env.clock().now());
  env.settle();

  EXPECT_EQ(st.crashes, 1u);
  EXPECT_EQ(st.total_resumes(), 1u);
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "kill/delta")),
            to_string(st.fs.read("kill/delta")));
  const invariant_report report = check_all(env, st);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CrashResume, LocalEditDuringCrashDiscardsStaleSession) {
  // The file changes again while the client is down: the journaled plan no
  // longer matches the local content, so recovery must discard the session
  // and ship the new content instead of resuming a stale payload.
  experiment_env env(crash_cfg(true));
  station& st = env.primary();
  env.faults().force_crash(crash_site::mid_chunk, 2);
  st.fs.create("kill/file", env.gen_compressed(256 * KiB), env.clock().now());
  // 1 s after the creation event the client is mid-upload and dies; the
  // restart comes 5 s later. Edit in between, while no client is alive.
  env.clock().schedule_at(env.clock().now() + sim_time::from_sec(3),
                          [&env, &st] {
                            modify_random_byte(st.fs, "kill/file",
                                               env.random(),
                                               env.clock().now());
                          });
  env.settle();

  EXPECT_EQ(st.crashes, 1u);
  EXPECT_EQ(st.total_resumes(), 0u);  // stale plan — nothing safe to resume
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "kill/file")),
            to_string(st.fs.read("kill/file")));
  const invariant_report report = check_all(env, st);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Sampled crash schedules: the whole harness loop (crash → restart →
// recover → maybe crash again) terminates, converges, and is deterministic.
// ---------------------------------------------------------------------------

bool same(const crash_run_result& a, const crash_run_result& b) {
  return a.total_traffic == b.total_traffic &&
         a.resume_traffic == b.resume_traffic &&
         a.retry_traffic == b.retry_traffic && a.tue == b.tue &&
         a.completion_sec == b.completion_sec && a.crashes == b.crashes &&
         a.resumes == b.resumes &&
         a.recovery_restarts == b.recovery_restarts &&
         a.journal_begun == b.journal_begun &&
         a.journal_committed == b.journal_committed &&
         a.journal_aborted == b.journal_aborted;
}

TEST(CrashExperiment, SampledCrashesConvergeAndAreDeterministic) {
  experiment_config cfg = crash_cfg(true);
  cfg.faults = fault_plan::crashes(0.2, /*seed=*/7);
  cfg.seed = 99;

  const crash_run_result a = run_crash_experiment(cfg, 4, 128 * KiB);
  EXPECT_GT(a.crashes, 0u);  // a 20% per-site schedule must hit something
  EXPECT_TRUE(a.invariants.ok()) << a.invariants.summary();
  EXPECT_EQ(a.journal_begun,
            a.journal_committed + a.journal_aborted +
                (a.journal_begun - a.journal_committed - a.journal_aborted))
      << "counter sanity";
  EXPECT_GT(a.resumes + a.recovery_restarts, 0u);
  EXPECT_GT(a.resume_traffic, 0u);

  const crash_run_result b = run_crash_experiment(cfg, 4, 128 * KiB);
  EXPECT_TRUE(same(a, b));
}

TEST(CrashExperiment, ComposedTransientAndCrashPlanStillConverges) {
  // Satellite: merged() composes a transient-fault plan with a crash plan in
  // one env — retries and crash recovery interleave and still converge.
  experiment_config cfg = crash_cfg(true);
  cfg.faults = fault_plan::merged(fault_plan::degraded(0.3, /*seed=*/11),
                                  fault_plan::crashes(0.15, /*seed=*/5));
  cfg.seed = 42;

  const crash_run_result res = run_crash_experiment(cfg, 3, 128 * KiB);
  EXPECT_TRUE(res.invariants.ok()) << res.invariants.summary();
  EXPECT_GT(res.crashes, 0u);
}

TEST(CrashExperiment, JournalOffIgnoresCrashPlan) {
  // Without a journal there is nothing to recover from, so kill sites are
  // not armed: a crash plan on a journal-less env must inject nothing.
  experiment_config cfg{dropbox()};
  cfg.method = access_method::pc_client;
  cfg.journal = false;
  cfg.faults = fault_plan::crashes(1.0, /*seed=*/3);
  experiment_env env(cfg);
  station& st = env.primary();
  st.fs.create("plain/file", env.gen_compressed(64 * KiB), env.clock().now());
  env.settle();

  EXPECT_EQ(st.crashes, 0u);
  EXPECT_EQ(env.faults().injected(fault_kind::client_crash), 0u);
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "plain/file")),
            to_string(st.fs.read("plain/file")));
}

// ---------------------------------------------------------------------------
// Satellite: a journaled transaction that exhausts its retry budget leaves
// an `aborted` record (with the reason) until the path is re-attempted.
// ---------------------------------------------------------------------------

TEST(JournalAbort, GiveUpLeavesAbortedRecordUntilRetry) {
  experiment_config cfg = crash_cfg(true);
  experiment_env env(cfg);
  station& st = env.primary();
  ASSERT_EQ(env.config().retry.max_attempts, 6);

  // Exactly one transaction's worth of failures: the session open gives up,
  // the record aborts, and the change requeues with a cooldown.
  env.faults().force_exchange_failures(6);
  st.fs.create("stubborn", env.gen_compressed(64 * KiB), env.clock().now());

  // Run up to (but not past) the requeue cooldown: the aborted record is the
  // only journal state left by the failed transaction.
  env.clock().run_until(env.clock().now() + sim_time::from_sec(40));
  const auto open = st.journal.open_records();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].state, journal_state::aborted);
  EXPECT_EQ(open[0].path, "stubborn");
  EXPECT_NE(open[0].note.find("retry budget"), std::string::npos)
      << open[0].note;
  EXPECT_EQ(st.journal.aborted_count(), 1u);
  EXPECT_FALSE(env.the_cloud().file_content(0, "stubborn").has_value());

  // The requeued attempt supersedes the aborted record and lands.
  env.settle();
  EXPECT_EQ(st.journal.aborted_count(), 1u);
  EXPECT_EQ(st.journal.open_records().size(), 0u);
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "stubborn")),
            to_string(st.fs.read("stubborn")));
  const invariant_report report = check_all(env, st);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// The resumable-session cloud API enforces its contract directly.
// ---------------------------------------------------------------------------

TEST(UploadSessions, ContractEnforcement) {
  cloud cl{cloud_config{}};
  const sim_time t = sim_time::from_sec(1);
  const resume_token tok = cl.begin_upload_session(0, "p", 3, 3000, t);
  ASSERT_NE(tok, 0u);
  EXPECT_TRUE(cl.session_open(tok));
  EXPECT_EQ(cl.open_session_count(), 1u);

  // Chunks may arrive out of order (striped transfers), but never twice and
  // never out of bounds.
  cl.upload_session_chunk(tok, 1, 1000, t);
  EXPECT_THROW(cl.upload_session_chunk(tok, 1, 1000, t), std::logic_error);
  EXPECT_THROW(cl.upload_session_chunk(tok, 3, 1000, t), std::logic_error);

  {
    // Out-of-order landing: the contiguous prefix lags the acked total.
    const upload_session_status st = cl.query_upload_session(tok, t);
    EXPECT_EQ(st.total_chunks, 3u);
    EXPECT_EQ(st.acked_chunks, 0u);
    EXPECT_EQ(st.acked_total, 1u);
    EXPECT_EQ(st.acked_bytes, 1000u);
    EXPECT_EQ(st.payload_bytes, 3000u);
  }

  cl.upload_session_chunk(tok, 0, 1000, t);
  EXPECT_THROW(cl.upload_session_chunk(tok, 0, 1000, t), std::logic_error);

  {
    // Chunk 0 closed the hole: the prefix catches up through chunk 1.
    const upload_session_status st = cl.query_upload_session(tok, t);
    EXPECT_EQ(st.acked_chunks, 2u);
    EXPECT_EQ(st.acked_total, 2u);
    EXPECT_EQ(st.acked_bytes, 2000u);
  }

  // Finalizing before all chunks acked is a client bug.
  byte_buffer content(3000, std::uint8_t{7});
  EXPECT_THROW(
      cl.finalize_session_put(tok, 0, 1, "p", content, 3000, t),
      std::logic_error);

  cl.upload_session_chunk(tok, 2, 1000, t);
  cl.finalize_session_put(tok, 0, 1, "p", content, 3000, t);
  EXPECT_FALSE(cl.session_open(tok));
  EXPECT_EQ(cl.open_session_count(), 0u);
  ASSERT_TRUE(cl.file_content(0, "p").has_value());
  EXPECT_EQ(cl.file_content(0, "p")->size(), 3000u);

  // Operating on a retired session throws; abandoning one is a no-op.
  EXPECT_THROW(cl.upload_session_chunk(tok, 0, 1, t), std::logic_error);
  EXPECT_THROW(cl.query_upload_session(tok, t), std::logic_error);
  cl.abandon_upload_session(tok);

  // Abandon drops progress without committing.
  const resume_token tok2 = cl.begin_upload_session(0, "q", 1, 10, t);
  cl.abandon_upload_session(tok2);
  EXPECT_FALSE(cl.session_open(tok2));
  EXPECT_FALSE(cl.file_content(0, "q").has_value());
}

TEST(UploadSessions, FinalizePersistsReceivedRangesOnChunkStore) {
  cloud_config cc;
  cc.use_chunk_store = true;
  cc.chunk_store_chunk_size = 4096;
  cloud cl{cc};
  const sim_time t = sim_time::from_sec(1);

  // 10'000 content bytes arriving through a 3-chunk session land as one
  // chunk object per received range (near-equal content split — session
  // boundaries live in compressed wire space), not re-split at the
  // backend's own 4 KiB granularity.
  const byte_buffer content(10'000, std::uint8_t{7});
  const resume_token tok = cl.begin_upload_session(0, "p", 3, 9'000, t);
  cl.upload_session_chunk(tok, 0, 3000, t);
  cl.upload_session_chunk(tok, 1, 3000, t);
  cl.upload_session_chunk(tok, 2, 3000, t);
  cl.finalize_session_put(tok, 0, 1, "p", content, 9'000, t);

  const file_manifest* man = cl.manifest(0, "p");
  ASSERT_NE(man, nullptr);
  const chunk_manifest* cm = cl.chunk_store()->find(man->object_key);
  ASSERT_NE(cm, nullptr);
  ASSERT_EQ(cm->extents.size(), 3u);
  EXPECT_EQ(cm->extents[0].length, 3334u);  // 10'000 = 3334 + 3333 + 3333
  EXPECT_EQ(cm->extents[1].length, 3333u);
  EXPECT_EQ(cm->extents[2].length, 3333u);
  ASSERT_TRUE(cl.file_content(0, "p").has_value());
  EXPECT_EQ(*cl.file_content(0, "p"), content);

  // A direct (session-less) put of the same bytes uses the fixed split.
  cl.put_file(0, 1, "q", content, 10'000, t);
  const chunk_manifest* direct =
      cl.chunk_store()->find(cl.manifest(0, "q")->object_key);
  ASSERT_NE(direct, nullptr);
  ASSERT_EQ(direct->extents.size(), 3u);  // 4096 + 4096 + 1808
  EXPECT_EQ(direct->extents[0].length, 4096u);
}

}  // namespace
}  // namespace cloudsync
