// Chunk-store backend (Cumulus-style manifests over refcounted chunks).
#include <gtest/gtest.h>

#include "storage/chunk_backend.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cloudsync {
namespace {

TEST(ChunkBackend, PutFullMaterializeRoundTrip) {
  object_store store;
  chunk_backend backend(store, 4096);
  rng r(1);
  const byte_buffer content = random_bytes(r, 10'000);
  backend.put_full("m1", content);
  EXPECT_EQ(backend.materialize("m1"), content);
  EXPECT_EQ(backend.live_chunks(), 3u);  // 4096 + 4096 + 1808
  const chunk_manifest* m = backend.find("m1");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->logical_size, 10'000u);
}

TEST(ChunkBackend, PutRangesStoresOneChunkPerRange) {
  object_store store;
  chunk_backend backend(store, 4096);
  rng r(8);
  const byte_buffer content = random_bytes(r, 10'000);
  // Caller-chosen boundaries (a resumed session's received ranges), not the
  // backend's 4096-byte granularity.
  backend.put_ranges("m1", content, {1000, 6500, 2500});
  EXPECT_EQ(backend.materialize("m1"), content);
  EXPECT_EQ(backend.live_chunks(), 3u);
  const chunk_manifest* m = backend.find("m1");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->extents.size(), 3u);
  EXPECT_EQ(m->extents[0].length, 1000u);
  EXPECT_EQ(m->extents[1].length, 6500u);
  EXPECT_EQ(m->extents[2].length, 2500u);
  backend.release("m1");
  EXPECT_EQ(backend.live_chunks(), 0u);
}

TEST(ChunkBackend, PutRangesRejectsBadSplits) {
  object_store store;
  chunk_backend backend(store, 4096);
  rng r(9);
  const byte_buffer content = random_bytes(r, 1000);
  // Zero-length range.
  EXPECT_THROW(backend.put_ranges("m", content, {500, 0, 500}),
               std::invalid_argument);
  // Past the end of the content.
  EXPECT_THROW(backend.put_ranges("m", content, {500, 600}),
               std::invalid_argument);
  // Short of the end of the content.
  EXPECT_THROW(backend.put_ranges("m", content, {500, 400}),
               std::invalid_argument);
  EXPECT_EQ(backend.find("m"), nullptr);
}

TEST(ChunkBackend, EmptyContent) {
  object_store store;
  chunk_backend backend(store, 4096);
  backend.put_full("empty", byte_view{});
  EXPECT_TRUE(backend.materialize("empty").empty());
  EXPECT_EQ(backend.live_chunks(), 0u);
}

TEST(ChunkBackend, ZeroChunkSizeThrows) {
  object_store store;
  EXPECT_THROW(chunk_backend(store, 0), std::invalid_argument);
}

TEST(ChunkBackend, UnknownManifestThrows) {
  object_store store;
  chunk_backend backend(store, 4096);
  EXPECT_THROW(backend.materialize("nope"), std::runtime_error);
  file_delta delta;
  EXPECT_THROW(backend.apply_delta("nope", "new", delta), std::runtime_error);
  EXPECT_EQ(backend.find("nope"), nullptr);
  EXPECT_NO_THROW(backend.release("nope"));
}

TEST(ChunkBackend, DeltaSharesUnchangedChunks) {
  object_store store;
  chunk_backend backend(store, 4096);
  rng r(2);
  const byte_buffer v1 = random_bytes(r, 64 * 1024);
  backend.put_full("v1", v1);
  const std::size_t chunks_v1 = backend.live_chunks();
  const std::uint64_t written_before = store.stats().bytes_written;

  byte_buffer v2 = v1;
  v2[30'000] ^= 0xff;
  const file_signature sig = compute_signature(v1, 4096);
  const file_delta delta = compute_delta(sig, v2);
  backend.apply_delta("v1", "v2", delta);

  EXPECT_EQ(backend.materialize("v2"), v2);
  // Only the changed block was written, not the 64 KB file.
  EXPECT_LE(store.stats().bytes_written - written_before, 5000u);
  // One extra chunk object (the new block); old ones shared.
  EXPECT_EQ(backend.live_chunks(), chunks_v1 + 1);
}

TEST(ChunkBackend, ReleaseGarbageCollectsUnsharedChunks) {
  object_store store;
  chunk_backend backend(store, 4096);
  rng r(3);
  const byte_buffer v1 = random_bytes(r, 16 * 1024);
  backend.put_full("v1", v1);

  byte_buffer v2 = v1;
  v2[0] ^= 1;
  const file_delta delta = compute_delta(compute_signature(v1, 4096), v2);
  backend.apply_delta("v1", "v2", delta);

  // Both manifests alive: 4 original + 1 replacement chunk.
  EXPECT_EQ(backend.live_chunks(), 5u);
  backend.release("v1");
  // v1's first block is unshared and gets collected; the other 3 survive
  // because v2 still references them.
  EXPECT_EQ(backend.live_chunks(), 4u);
  EXPECT_EQ(backend.materialize("v2"), v2);
  backend.release("v2");
  EXPECT_EQ(backend.live_chunks(), 0u);
}

TEST(ChunkBackend, AppendOnlyWritesTail) {
  object_store store;
  chunk_backend backend(store, 4096);
  rng r(4);
  const byte_buffer v1 = random_bytes(r, 40'960);
  backend.put_full("v1", v1);
  const std::uint64_t written_before = store.stats().bytes_written;

  byte_buffer v2 = v1;
  const byte_buffer tail = random_bytes(r, 2048);
  append(v2, tail);
  const file_delta delta = compute_delta(compute_signature(v1, 4096), v2);
  backend.apply_delta("v1", "v2", delta);

  EXPECT_EQ(backend.materialize("v2"), v2);
  EXPECT_LE(store.stats().bytes_written - written_before, 2100u);
}

TEST(ChunkBackend, ChainOfVersions) {
  object_store store;
  chunk_backend backend(store, 2048);
  rng r(5);
  byte_buffer content = random_bytes(r, 20'000);
  backend.put_full("v0", content);
  std::string prev = "v0";
  for (int i = 1; i <= 10; ++i) {
    byte_buffer next = content;
    next[r.uniform(next.size())] ^= 0x42;
    const byte_buffer extra = random_bytes(r, 500);
    append(next, extra);
    const file_delta delta =
        compute_delta(compute_signature(content, 2048), next);
    const std::string key = "v" + std::to_string(i);
    backend.apply_delta(prev, key, delta);
    backend.release(prev);
    ASSERT_EQ(backend.materialize(key), next);
    content = std::move(next);
    prev = key;
  }
}

TEST(ChunkBackend, InconsistentDeltaThrows) {
  object_store store;
  chunk_backend backend(store, 4096);
  rng r(6);
  backend.put_full("v1", random_bytes(r, 8192));
  file_delta delta;
  delta.block_size = 4096;
  delta.new_file_size = 4096;
  delta.ops.push_back({delta_op::kind::copy, 9, 1, {}});  // out of range
  EXPECT_THROW(backend.apply_delta("v1", "v2", delta), std::runtime_error);
}

TEST(ChunkBackend, ExtentMergingKeepsManifestsCompact) {
  object_store store;
  chunk_backend backend(store, 1024);
  rng r(7);
  const byte_buffer v1 = random_bytes(r, 32 * 1024);
  backend.put_full("v1", v1);

  // Identity delta: every block copied in order.
  const file_delta delta = compute_delta(compute_signature(v1, 1024), v1);
  backend.apply_delta("v1", "v2", delta);
  const chunk_manifest* m = backend.find("v2");
  ASSERT_NE(m, nullptr);
  // Contiguous same-object runs merge; the manifest stays ≤ the chunk count.
  EXPECT_LE(m->extents.size(), 32u);
  EXPECT_EQ(backend.materialize("v2"), v1);
}

}  // namespace
}  // namespace cloudsync
