#include "net/traffic_meter.hpp"

#include <gtest/gtest.h>

namespace cloudsync {
namespace {

TEST(TrafficMeter, StartsEmpty) {
  traffic_meter m;
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.overhead(), 0u);
}

TEST(TrafficMeter, RecordsByDirectionAndCategory) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 100);
  m.record(direction::down, traffic_category::payload, 50);
  m.record(direction::up, traffic_category::metadata, 10);
  EXPECT_EQ(m.total(), 160u);
  EXPECT_EQ(m.total(direction::up), 110u);
  EXPECT_EQ(m.total(direction::down), 50u);
  EXPECT_EQ(m.by_category(traffic_category::payload), 150u);
  EXPECT_EQ(m.get(direction::up, traffic_category::metadata), 10u);
}

TEST(TrafficMeter, OverheadExcludesPayload) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 1000);
  m.record(direction::up, traffic_category::transport, 30);
  m.record(direction::down, traffic_category::notification, 20);
  EXPECT_EQ(m.overhead(), 50u);
}

TEST(TrafficMeter, Reset) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 5);
  m.reset();
  EXPECT_EQ(m.total(), 0u);
}

TEST(TrafficMeter, SnapshotDelta) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 100);
  const auto snap = m.snap();
  m.record(direction::down, traffic_category::metadata, 40);
  m.record(direction::up, traffic_category::payload, 10);
  EXPECT_EQ(m.total_since(snap), 50u);
}

TEST(TrafficMeter, SummaryRendersAllCategories) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 1024);
  const std::string s = m.summary();
  EXPECT_NE(s.find("payload"), std::string::npos);
  EXPECT_NE(s.find("metadata"), std::string::npos);
  EXPECT_NE(s.find("transport"), std::string::npos);
  EXPECT_NE(s.find("notification"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(TrafficMeter, CategoryNames) {
  EXPECT_STREQ(to_string(traffic_category::payload), "payload");
  EXPECT_STREQ(to_string(traffic_category::transport), "transport");
}

}  // namespace
}  // namespace cloudsync
