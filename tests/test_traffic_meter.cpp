#include "net/traffic_meter.hpp"

#include <gtest/gtest.h>

namespace cloudsync {
namespace {

TEST(TrafficMeter, StartsEmpty) {
  traffic_meter m;
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.overhead(), 0u);
}

TEST(TrafficMeter, RecordsByDirectionAndCategory) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 100);
  m.record(direction::down, traffic_category::payload, 50);
  m.record(direction::up, traffic_category::metadata, 10);
  EXPECT_EQ(m.total(), 160u);
  EXPECT_EQ(m.total(direction::up), 110u);
  EXPECT_EQ(m.total(direction::down), 50u);
  EXPECT_EQ(m.by_category(traffic_category::payload), 150u);
  EXPECT_EQ(m.get(direction::up, traffic_category::metadata), 10u);
}

TEST(TrafficMeter, OverheadExcludesPayload) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 1000);
  m.record(direction::up, traffic_category::transport, 30);
  m.record(direction::down, traffic_category::notification, 20);
  EXPECT_EQ(m.overhead(), 50u);
}

TEST(TrafficMeter, Reset) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 5);
  m.reset();
  EXPECT_EQ(m.total(), 0u);
}

TEST(TrafficMeter, SnapshotDelta) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 100);
  const auto snap = m.snap();
  m.record(direction::down, traffic_category::metadata, 40);
  m.record(direction::up, traffic_category::payload, 10);
  EXPECT_EQ(m.total_since(snap), 50u);
}

TEST(TrafficMeter, SnapshotDeltaClampsAfterReset) {
  // Regression: a snapshot taken before reset() has counters larger than the
  // live ones; the unsigned subtraction used to wrap to ~2^64 instead of
  // clamping at zero.
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 1000);
  const auto snap = m.snap();
  m.reset();
  EXPECT_EQ(m.total_since(snap), 0u);
  // Per-counter clamping: growth in one counter is not cancelled by the
  // stale (post-reset) deficit in another.
  m.record(direction::down, traffic_category::metadata, 70);
  EXPECT_EQ(m.total_since(snap), 70u);
  // A counter that regrew past its snapshot value counts only the excess.
  m.record(direction::up, traffic_category::payload, 1010);
  EXPECT_EQ(m.total_since(snap), 80u);
}

TEST(TrafficMeter, RetryCategoryIsTracked) {
  traffic_meter m;
  m.record(direction::up, traffic_category::retry, 300);
  m.record(direction::down, traffic_category::retry, 100);
  EXPECT_EQ(m.by_category(traffic_category::retry), 400u);
  EXPECT_EQ(m.overhead(), 400u);  // wasted bytes are overhead, not payload
  EXPECT_STREQ(to_string(traffic_category::retry), "retry");
  EXPECT_NE(m.summary().find("retry"), std::string::npos);
}

TEST(TrafficMeter, SummaryRendersAllCategories) {
  traffic_meter m;
  m.record(direction::up, traffic_category::payload, 1024);
  const std::string s = m.summary();
  EXPECT_NE(s.find("payload"), std::string::npos);
  EXPECT_NE(s.find("metadata"), std::string::npos);
  EXPECT_NE(s.find("transport"), std::string::npos);
  EXPECT_NE(s.find("notification"), std::string::npos);
  EXPECT_NE(s.find("TOTAL"), std::string::npos);
}

TEST(TrafficMeter, CategoryNames) {
  EXPECT_STREQ(to_string(traffic_category::payload), "payload");
  EXPECT_STREQ(to_string(traffic_category::transport), "transport");
}

TEST(TrafficMeter, RedundancyCategoryIsTracked) {
  // Proactive redundancy (FEC parity shards, losing hedge duplicates) is
  // overhead the transfer scheduler spends on purpose — metered apart from
  // `retry` (reactive) so the frontier bench can price each separately.
  traffic_meter m;
  m.record(direction::up, traffic_category::redundancy, 4096);
  m.record(direction::down, traffic_category::redundancy, 32);
  EXPECT_EQ(m.by_category(traffic_category::redundancy), 4128u);
  EXPECT_EQ(m.overhead(), 4128u);
  EXPECT_STREQ(to_string(traffic_category::redundancy), "redundancy");
  EXPECT_NE(m.summary().find("redundancy"), std::string::npos);
}

TEST(TrafficMeter, RedundancySurvivesResetAndSnapshotClamp) {
  traffic_meter m;
  m.record(direction::up, traffic_category::redundancy, 1000);
  const auto snap = m.snap();
  m.reset();
  EXPECT_EQ(m.by_category(traffic_category::redundancy), 0u);
  // Clamped, not wrapped, against the pre-reset snapshot...
  EXPECT_EQ(m.total_since(snap), 0u);
  // ...and growth after the reset counts only the excess over the snapshot.
  m.record(direction::up, traffic_category::redundancy, 1250);
  EXPECT_EQ(m.total_since(snap), 250u);
}

TEST(TrafficMeter, RehydrateCategoryIsTracked) {
  // Miss-driven re-hydration of the client cache tier (ranged fetches of
  // evicted blocks) is traffic a full-replica client never pays — metered
  // apart from `payload` so the cache bench can price residency misses and
  // the uncapped-identity leg can assert it reads exactly zero.
  traffic_meter m;
  m.record(direction::down, traffic_category::rehydrate, 8192);
  m.record(direction::up, traffic_category::rehydrate, 96);
  EXPECT_EQ(m.by_category(traffic_category::rehydrate), 8288u);
  EXPECT_EQ(m.overhead(), 8288u);
  EXPECT_STREQ(to_string(traffic_category::rehydrate), "rehydrate");
  EXPECT_NE(m.summary().find("rehydrate"), std::string::npos);
}

TEST(TrafficMeter, RehydrateSurvivesResetAndSnapshotClamp) {
  // A meter reset mid-rehydration (crash retirement, window rollover) must
  // clamp against the pre-reset snapshot, never underflow.
  traffic_meter m;
  m.record(direction::down, traffic_category::rehydrate, 1000);
  const auto snap = m.snap();
  m.reset();
  EXPECT_EQ(m.by_category(traffic_category::rehydrate), 0u);
  EXPECT_EQ(m.total_since(snap), 0u);
  m.record(direction::down, traffic_category::rehydrate, 1250);
  EXPECT_EQ(m.total_since(snap), 250u);
}

}  // namespace
}  // namespace cloudsync
