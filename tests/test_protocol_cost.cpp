// Differential tests for the analytical protocol cost model: on constructed
// updates where the prediction has no excuse, it must equal the real
// planner's numbers exactly (delta frames via delta_wire_size, payload via
// wire_payload_size's probe fast path); everywhere else it must stay inside
// the calibration loop's reach.
#include <gtest/gtest.h>

#include <cmath>

#include "chunking/rsync.hpp"
#include "client/protocol_cost.hpp"
#include "client/sync_engine.hpp"
#include "fs/file_ops.hpp"
#include "pipeline/byte_pipeline.hpp"

namespace cloudsync {
namespace {

constexpr std::size_t kBlock = 4 * KiB;
constexpr std::size_t kFileBytes = 32 * KiB;  // 8 whole blocks

service_profile lab_profile() {
  service_profile s = dropbox();
  s.delta_chunk_size = kBlock;
  s.dedup = {dedup_granularity::content_defined, 4 * MiB,
             /*cross_user=*/false, cdc_params{}};
  return s;
}

struct fixture {
  service_profile profile = lab_profile();
  cloud cl;
  planning_env env;

  fixture() : cl(cloud_config{lab_profile().dedup}) {
    env.profile = &profile;
    env.method = access_method::pc_client;
    env.cl = &cl;
  }
};

double entropy_of(const byte_buffer& data) {
  content_request req;
  req.entropy = true;
  return analyze_content(byte_view{data.data(), data.size()}, req)
      .entropy_bits_per_byte;
}

update_features features_for(fixture& fx, const content_ref& content,
                             shadow_entry* shadow) {
  static const std::string path = "f";
  protocol_update up;
  up.path = &path;
  up.content = &content;
  up.in_cloud = shadow != nullptr;
  up.shadow = shadow;
  return extract_update_features(fx.env, up, {}, 0.0);
}

TEST(ProtocolCost, IdenticalFilePredictsExactCopyFrame) {
  fixture fx;
  rng r(7);
  const byte_buffer data = make_text_file(r, kFileBytes);
  const content_ref content = content_ref::from_buffer(byte_buffer(data));
  shadow_entry sh;
  sh.content = content;

  const update_features f = features_for(fx, content, &sh);
  ASSERT_TRUE(f.has_shadow);
  EXPECT_DOUBLE_EQ(f.similarity, 1.0);

  const file_signature sig =
      compute_signature(byte_view{data.data(), data.size()}, kBlock);
  const file_delta d =
      compute_delta(sig, byte_view{data.data(), data.size()});
  EXPECT_EQ(predicted_delta_frame_bytes(f.size, f.block_size, f.similarity),
            delta_wire_size(d));
}

TEST(ProtocolCost, DisjointFilePredictsExactLiteralFrame) {
  fixture fx;
  rng r_old(11), r_new(13);
  const byte_buffer old_data = make_compressed_file(r_old, kFileBytes);
  const byte_buffer new_data = make_compressed_file(r_new, kFileBytes);
  const content_ref content =
      content_ref::from_buffer(byte_buffer(new_data));
  shadow_entry sh;
  sh.content = content_ref::from_buffer(byte_buffer(old_data));

  const update_features f = features_for(fx, content, &sh);
  ASSERT_TRUE(f.has_shadow);
  EXPECT_DOUBLE_EQ(f.similarity, 0.0);

  const file_signature sig = compute_signature(
      byte_view{old_data.data(), old_data.size()}, kBlock);
  const file_delta d =
      compute_delta(sig, byte_view{new_data.data(), new_data.size()});
  EXPECT_EQ(predicted_delta_frame_bytes(f.size, f.block_size, f.similarity),
            delta_wire_size(d));
}

TEST(ProtocolCost, SpacedBlockEditsPredictExactFrame) {
  // Replace blocks 2 and 5 of an 8-block file with fresh random bytes: the
  // evenly-spaced block-aligned edit is exactly the frame shape the model
  // assumes, so prediction == the real delta's wire size, byte for byte.
  fixture fx;
  rng r(17);
  const byte_buffer old_data = make_text_file(r, kFileBytes);
  byte_buffer new_data = old_data;
  rng r_edit(19);
  for (const std::size_t blk : {std::size_t{2}, std::size_t{5}}) {
    const byte_buffer noise = make_compressed_file(r_edit, kBlock);
    std::copy(noise.begin(), noise.end(), new_data.begin() + blk * kBlock);
  }
  const content_ref content =
      content_ref::from_buffer(byte_buffer(new_data));
  shadow_entry sh;
  sh.content = content_ref::from_buffer(byte_buffer(old_data));

  const update_features f = features_for(fx, content, &sh);
  ASSERT_TRUE(f.has_shadow);
  EXPECT_DOUBLE_EQ(f.similarity, 6.0 / 8.0);

  const file_signature sig = compute_signature(
      byte_view{old_data.data(), old_data.size()}, kBlock);
  const file_delta d =
      compute_delta(sig, byte_view{new_data.data(), new_data.size()});
  EXPECT_EQ(predicted_delta_frame_bytes(f.size, f.block_size, f.similarity),
            delta_wire_size(d));
}

TEST(ProtocolCost, HighEntropyFilePredictsRawViaProbePath) {
  // Incompressible content >= the probe threshold: both the model and the
  // real sizer take the incompressibility fast path and answer raw size.
  rng r(23);
  const byte_buffer data = make_compressed_file(r, 8 * KiB);
  const double entropy = entropy_of(data);
  EXPECT_GT(entropy, 7.5);
  const double predicted =
      predicted_compressed_bytes(static_cast<double>(data.size()), entropy,
                                 /*level=*/4);
  EXPECT_DOUBLE_EQ(predicted, static_cast<double>(data.size()));
  EXPECT_EQ(wire_payload_size(byte_view{data.data(), data.size()}, 4),
            data.size());
}

TEST(ProtocolCost, ZeroFilePredictionStaysBounded) {
  // An all-zeros file compresses almost to nothing; the model's LZ token
  // floor must keep the prediction within calibration reach of the real
  // sizer (a bounded constant factor), never orders of magnitude off.
  const byte_buffer zeros(16 * KiB, 0);
  const double entropy = entropy_of(zeros);
  EXPECT_NEAR(entropy, 0.0, 1e-9);
  const double predicted = predicted_compressed_bytes(
      static_cast<double>(zeros.size()), entropy, /*level=*/4);
  const double actual = static_cast<double>(
      wire_payload_size(byte_view{zeros.data(), zeros.size()}, 4));
  EXPECT_LT(predicted, static_cast<double>(zeros.size()) / 16.0);
  EXPECT_LT(actual, static_cast<double>(zeros.size()) / 16.0);
  const double ratio = predicted / actual;
  EXPECT_GE(ratio, 0.25);
  EXPECT_LE(ratio, 4.0);
}

TEST(ProtocolCost, CompressionLevelZeroPredictsRaw) {
  EXPECT_DOUBLE_EQ(predicted_compressed_bytes(1000.0, 4.0, 0), 1000.0);
  EXPECT_DOUBLE_EQ(predicted_compressed_bytes(0.0, 4.0, 4), 0.0);
}

TEST(ProtocolCost, FingerprintCountFormulas) {
  dedup_policy none = dedup_policy::disabled();
  EXPECT_EQ(expected_fingerprint_count(none, 1 * MiB), 0u);

  dedup_policy whole{dedup_granularity::full_file, 4 * MiB, false};
  EXPECT_EQ(expected_fingerprint_count(whole, 1), 1u);
  EXPECT_EQ(expected_fingerprint_count(whole, 0), 0u);

  dedup_policy fixed{dedup_granularity::fixed_block, 4 * MiB, false};
  EXPECT_EQ(expected_fingerprint_count(fixed, 4 * MiB), 1u);
  EXPECT_EQ(expected_fingerprint_count(fixed, 4 * MiB + 1), 2u);
  EXPECT_EQ(expected_fingerprint_count(fixed, 9 * MiB), 3u);

  dedup_policy cdc{dedup_granularity::content_defined, 4 * MiB, false,
                   cdc_params{}};
  // Expected chunk pitch = min(max_size, min_size + avg_size) = 10 KiB.
  EXPECT_EQ(expected_fingerprint_count(cdc, 100 * KiB), 10u);
  EXPECT_EQ(expected_fingerprint_count(cdc, 1), 1u);  // floor of one chunk
  EXPECT_EQ(expected_fingerprint_count(cdc, 0), 0u);
}

TEST(ProtocolCost, JournaledSessionsChargeRoundTrips) {
  fixture fx;
  rng r(29);
  const byte_buffer data = make_compressed_file(r, kFileBytes);
  const content_ref content = content_ref::from_buffer(byte_buffer(data));
  const update_features f = features_for(fx, content, nullptr);

  const cost_prediction plain =
      predict_protocol_cost(protocol_id::full_file, f, fx.env);
  ASSERT_TRUE(plain.feasible);
  EXPECT_DOUBLE_EQ(plain.round_trips, 1.0);

  fx.env.journaled = true;
  fx.env.session_chunk_bytes = 8 * KiB;
  const cost_prediction chunked =
      predict_protocol_cost(protocol_id::full_file, f, fx.env);
  ASSERT_TRUE(chunked.feasible);
  EXPECT_DOUBLE_EQ(chunked.round_trips,
                   2.0 + std::ceil(plain.app_up /
                                   (1.0 + fx.env.mp().per_payload_metadata) /
                                   (8.0 * KiB)));
}

TEST(ProtocolCost, WholeFileDuplicateDrivesDedupHitProbability) {
  fixture fx;
  rng r(31);
  const byte_buffer data = make_compressed_file(r, kFileBytes);
  const content_ref content = content_ref::from_buffer(byte_buffer(data));

  std::unordered_set<std::uint64_t> synced;
  static const std::string path = "f";
  protocol_update up;
  up.path = &path;
  up.content = &content;
  const update_features fresh =
      extract_update_features(fx.env, up, synced, 0.0);
  EXPECT_FALSE(fresh.whole_file_duplicate);
  EXPECT_DOUBLE_EQ(fresh.dedup_hit_prob, 0.0);

  synced.insert(content.hash64());
  const update_features dup =
      extract_update_features(fx.env, up, synced, 0.0);
  EXPECT_TRUE(dup.whole_file_duplicate);
  EXPECT_DOUBLE_EQ(dup.dedup_hit_prob, 1.0);

  // A duplicate file costs cdc_dedup only fingerprints; the model must rank
  // it far below shipping the bytes full-file.
  const cost_prediction cdc =
      predict_protocol_cost(protocol_id::cdc_dedup, dup, fx.env);
  const cost_prediction full =
      predict_protocol_cost(protocol_id::full_file, dup, fx.env);
  ASSERT_TRUE(cdc.feasible);
  ASSERT_TRUE(full.feasible);
  EXPECT_LT(cdc.app_up, full.app_up / 10.0);
}

TEST(ProtocolCost, CalibrationConvergesCorrectionTowardActual) {
  // Feed the selector a stream of observations where the actual is always
  // 2x the prediction: the correction factor must walk toward 2 and the
  // recorded errors must land in the histogram.
  protocol_options opts;
  opts.mode = protocol_mode::adaptive;
  protocol_selector sel(opts, link_config::minnesota());

  // The plan ships the CORRECTED prediction (model x correction), exactly
  // as choose() stores it, so the feedback loop sees its own adjustment.
  upload_plan plan;
  plan.protocol = protocol_id::full_file;
  const protocol_selector_stats& s = sel.stats();
  for (int i = 0; i < 12; ++i) {
    plan.predicted_app_up =
        1000.0 *
        s.correction[static_cast<std::size_t>(protocol_id::full_file)];
    sel.observe(plan, /*content_hash=*/static_cast<std::uint64_t>(i),
                /*actual_app_up=*/2000);
  }
  EXPECT_EQ(s.observations, 12u);
  EXPECT_NEAR(s.correction[static_cast<std::size_t>(protocol_id::full_file)],
              2.0, 0.01);
  // First observation is off by 2x; after correction kicks in the errors
  // shrink geometrically, so the median lands in the tightest bucket.
  EXPECT_LT(s.median_abs_rel_error(), 0.05);
  EXPECT_GT(s.mean_abs_rel_error(), 0.0);
  EXPECT_GE(s.error_hist[0], 6u);
}

TEST(ProtocolCost, NonAdaptiveModesNeverObserve) {
  protocol_options opts;
  opts.mode = protocol_mode::service_default;
  protocol_selector sel(opts, link_config::minnesota());
  upload_plan plan;
  plan.protocol = protocol_id::rsync;
  plan.predicted_app_up = 500.0;
  sel.observe(plan, 42, 1000);
  EXPECT_EQ(sel.stats().observations, 0u);
  EXPECT_DOUBLE_EQ(
      sel.stats().correction[static_cast<std::size_t>(protocol_id::rsync)],
      1.0);
}

}  // namespace
}  // namespace cloudsync
