// The synthetic trace must reproduce the paper's published marginals.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/analysis.hpp"
#include "trace/generator.hpp"
#include "trace/serialize.hpp"
#include "util/units.hpp"

namespace cloudsync {
namespace {

const trace_dataset& small_trace() {
  static const trace_dataset ds = [] {
    trace_params p;
    p.scale = 0.02;  // ~4.4k files: fast but statistically stable
    return generate_trace(p);
  }();
  return ds;
}

TEST(TraceGenerator, Deterministic) {
  trace_params p;
  p.scale = 0.005;
  const trace_dataset a = generate_trace(p);
  const trace_dataset b = generate_trace(p);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].full_md5, b.files[i].full_md5);
    EXPECT_EQ(a.files[i].original_size, b.files[i].original_size);
  }
}

TEST(TraceGenerator, ScaleControlsFileCount) {
  trace_params p;
  p.scale = 0.01;
  const auto ds = generate_trace(p);
  // 222,632 × 0.01 ≈ 2,226.
  EXPECT_NEAR(static_cast<double>(ds.files.size()), 2226.0, 60.0);
}

TEST(TraceGenerator, ServicesPresentWithTable2Proportions) {
  const auto& ds = small_trace();
  std::size_t db = 0, od = 0;
  for (const auto& f : ds.files) {
    db += f.service == "Dropbox";
    od += f.service == "OneDrive";
  }
  // Dropbox has ~6x OneDrive's files in Table 2.
  EXPECT_GT(db, od * 4);
}

TEST(TraceStats, SizeDistributionMatchesPaper) {
  const trace_summary s = summarize(small_trace());
  // Median ≈ 7.5 KB, 77 % < 100 KB, mean ≈ 962 KB (generous tolerances: we
  // check the regime, not the exact draw).
  EXPECT_GT(s.median_size, 2 * 1024.0);
  EXPECT_LT(s.median_size, 25 * 1024.0);
  EXPECT_NEAR(s.fraction_small, 0.77, 0.06);
  EXPECT_GT(s.mean_size, 300 * 1024.0);
  EXPECT_LT(s.max_size, 2.1 * static_cast<double>(GiB));
}

TEST(TraceStats, CompressibilityMatchesPaper) {
  const trace_summary s = summarize(small_trace());
  EXPECT_NEAR(s.fraction_effectively_compressible, 0.52, 0.08);
  EXPECT_NEAR(s.overall_compression_ratio, 1.31, 0.25);
  EXPECT_NEAR(s.traffic_saving, 0.24, 0.12);
  EXPECT_LT(s.median_compressed, s.median_size);
}

TEST(TraceStats, ModificationRateMatchesPaper) {
  const trace_summary s = summarize(small_trace());
  EXPECT_NEAR(s.fraction_modified, 0.84, 0.04);
}

TEST(TraceStats, SmallFilesAreBatchable) {
  const double frac = batchable_small_fraction(small_trace());
  // Paper: nearly two-thirds.
  EXPECT_NEAR(frac, 0.66, 0.15);
}

TEST(TraceStats, FullFileDuplicationNearNineteenPercent) {
  const double frac = full_file_duplicate_fraction(small_trace());
  EXPECT_NEAR(frac, 0.188, 0.08);
}

TEST(TraceDedup, BlockLevelOnlySlightlyBetterThanFullFile) {
  const auto& ds = small_trace();
  const double full = dedup_ratio_full_file(ds, true);
  const double blocks_128k = dedup_ratio_blocks(ds, 0, true);
  const double blocks_16m = dedup_ratio_blocks(ds, 7, true);
  EXPECT_GT(full, 1.1);
  // Fig 5: block-level ≥ full-file, but the gain is trivial.
  EXPECT_GE(blocks_128k, full * 0.999);
  EXPECT_LT(blocks_128k, full * 1.25);
  // Smaller blocks dedup at least as much as bigger blocks.
  EXPECT_GE(blocks_128k, blocks_16m * 0.999);
}

TEST(TraceStats, FrequentModificationUsersExist) {
  // §6 motivation: a minority of users get a meaningful traffic share from
  // frequent modifications (the paper cites 8.5% for Dropbox's fleet).
  const double frac = frequent_modification_user_fraction(small_trace());
  EXPECT_GT(frac, 0.0);
  EXPECT_LT(frac, 0.5);
  // A higher threshold must capture fewer (or equal) users.
  EXPECT_LE(frequent_modification_user_fraction(small_trace(), 8.0 * 1024,
                                                4.0 * 1024, 0.5),
            frac);
  // Larger per-modification payload means more users cross the line.
  EXPECT_GE(frequent_modification_user_fraction(small_trace(), 8.0 * 1024,
                                                200.0 * 1024, 0.10),
            frac);
}

TEST(TraceDedup, CrossUserBeatsPerUser) {
  const auto& ds = small_trace();
  EXPECT_GE(dedup_ratio_full_file(ds, true),
            dedup_ratio_full_file(ds, false));
}

TEST(TraceRecord, BlockIdsConsistentWithSizes) {
  const auto& ds = small_trace();
  for (std::size_t i = 0; i < std::min<std::size_t>(ds.files.size(), 200);
       ++i) {
    const trace_file_record& f = ds.files[i];
    for (std::size_t g = 0; g < trace_block_sizes.size(); ++g) {
      const std::uint64_t expected =
          f.original_size == 0
              ? 0
              : (f.original_size + trace_block_sizes[g] - 1) /
                    trace_block_sizes[g];
      EXPECT_EQ(f.block_ids[g].size(), expected) << f.file_name;
    }
  }
}

TEST(TraceRecord, DuplicateFilesShareAllBlockIds) {
  const auto& ds = small_trace();
  // Find a full duplicate pair via full_md5.
  for (std::size_t i = 0; i < ds.files.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(ds.files.size(), i + 400); ++j) {
      if (ds.files[i].full_md5 == ds.files[j].full_md5) {
        EXPECT_EQ(ds.files[i].block_ids, ds.files[j].block_ids);
        return;
      }
    }
  }
  GTEST_SKIP() << "no duplicate pair found in the scanned window";
}

TEST(TraceCsv, RoundTrip) {
  trace_params p;
  p.scale = 0.002;
  const trace_dataset ds = generate_trace(p);
  std::stringstream ss;
  write_trace_csv(ds, ss);
  const trace_dataset back = read_trace_csv(ss);
  ASSERT_EQ(back.files.size(), ds.files.size());
  for (std::size_t i = 0; i < ds.files.size(); ++i) {
    EXPECT_EQ(back.files[i].file_name, ds.files[i].file_name);
    EXPECT_EQ(back.files[i].original_size, ds.files[i].original_size);
    EXPECT_EQ(back.files[i].compressed_size, ds.files[i].compressed_size);
    EXPECT_EQ(back.files[i].modify_count, ds.files[i].modify_count);
    EXPECT_EQ(back.files[i].full_md5, ds.files[i].full_md5);
  }
}

TEST(TraceCsv, BadHeaderThrows) {
  std::stringstream ss("not,a,header\n");
  EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceCsv, BadRowThrows) {
  std::stringstream ss(trace_csv_header() + "\n1,2,3\n");
  EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceCsv, NonNumericCellThrowsRuntimeError) {
  std::stringstream ss(trace_csv_header() +
                       "\nnot_a_number,svc,f,1,1,0,0,0," +
                       std::string(32, 'a') + "\n");
  EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceCsv, BadMd5Throws) {
  std::stringstream ss(trace_csv_header() + "\n1,svc,f,1,1,0,0,0,zzzz\n");
  EXPECT_THROW(read_trace_csv(ss), std::runtime_error);
}

TEST(TraceSummaryTotals, Consistent) {
  const auto& ds = small_trace();
  EXPECT_EQ(summarize(ds).total_original, ds.total_original_bytes());
  EXPECT_GE(ds.total_original_bytes(), ds.total_compressed_bytes());
}

}  // namespace
}  // namespace cloudsync
