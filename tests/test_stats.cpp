#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace cloudsync {
namespace {

TEST(RunningStats, Empty) {
  running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  running_stats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  running_stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  running_stats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(EmpiricalCdf, Quantiles) {
  empirical_cdf cdf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 5.5);
}

TEST(EmpiricalCdf, At) {
  empirical_cdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, UnsortedInput) {
  empirical_cdf cdf({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
}

TEST(EmpiricalCdf, Empty) {
  empirical_cdf cdf({});
  EXPECT_EQ(cdf.size(), 0u);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(EmpiricalCdf, PointsCoverRange) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(i);
  empirical_cdf cdf(std::move(v));
  const auto pts = cdf.points(10);
  ASSERT_FALSE(pts.empty());
  EXPECT_LE(pts.size(), 12u);
  EXPECT_DOUBLE_EQ(pts.back().first, 1000.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
}

TEST(EmpiricalCdf, QuantileClamps) {
  empirical_cdf cdf({1, 2, 3});
  EXPECT_DOUBLE_EQ(cdf.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(2.0), 3.0);
}

}  // namespace
}  // namespace cloudsync
