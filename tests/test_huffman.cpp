// Canonical Huffman coder: known properties, round trips, robustness.
#include <gtest/gtest.h>

#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

TEST(Huffman, RoundTripText) {
  rng r(1);
  const byte_buffer text = random_text(r, 100'000);
  const byte_buffer frame = huffman_encode(text);
  EXPECT_EQ(huffman_decode(frame), text);
  // Lowercase+digits text has < 6 bits/byte of entropy: must shrink.
  EXPECT_LT(frame.size(), text.size() * 8 / 10);
}

TEST(Huffman, RoundTripRandomBytesStored) {
  rng r(2);
  const byte_buffer noise = random_bytes(r, 50'000);
  const byte_buffer frame = huffman_encode(noise);
  EXPECT_EQ(huffman_decode(frame), noise);
  // Uniform bytes cannot be entropy-coded; stored fallback keeps it tight.
  EXPECT_LE(frame.size(), noise.size() + 8);
}

TEST(Huffman, RoundTripSkewedDistribution) {
  // Heavy skew: one symbol dominates — near-1-bit codes.
  rng r(3);
  byte_buffer data;
  for (int i = 0; i < 50'000; ++i) {
    data.push_back(r.chance(0.9) ? 'a' : static_cast<std::uint8_t>(r.next()));
  }
  const byte_buffer frame = huffman_encode(data);
  EXPECT_EQ(huffman_decode(frame), data);
  EXPECT_LT(frame.size(), data.size() / 2);
}

TEST(Huffman, SingleSymbolRuns) {
  const byte_buffer data(10'000, std::uint8_t{'z'});
  const byte_buffer frame = huffman_encode(data);
  EXPECT_EQ(huffman_decode(frame), data);
  // One symbol -> 1 bit each -> ~1.25 KB + table.
  EXPECT_LT(frame.size(), 1500u);
}

TEST(Huffman, TinyAndEmptyInputsStored) {
  EXPECT_TRUE(huffman_decode(huffman_encode({})).empty());
  const byte_buffer one = to_buffer("x");
  EXPECT_EQ(huffman_decode(huffman_encode(one)), one);
}

class HuffmanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HuffmanSizes, RoundTrip) {
  rng r(GetParam());
  const byte_buffer data = random_text(r, GetParam());
  EXPECT_EQ(huffman_decode(huffman_encode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HuffmanSizes,
                         ::testing::Values(63, 64, 65, 127, 1000, 4097,
                                           65'536, 300'000));

TEST(Huffman, AllByteValuesPresent) {
  byte_buffer data;
  for (int rep = 0; rep < 300; ++rep) {
    for (int b = 0; b < 256; ++b) {
      data.push_back(static_cast<std::uint8_t>(b));
    }
  }
  EXPECT_EQ(huffman_decode(huffman_encode(data)), data);
}

TEST(Huffman, CorruptionDetected) {
  rng r(4);
  byte_buffer frame = huffman_encode(random_text(r, 10'000));
  frame.resize(frame.size() / 2);  // truncate the bit stream
  EXPECT_THROW(huffman_decode(frame), std::runtime_error);
  EXPECT_THROW(huffman_decode(to_buffer("garbage")), std::runtime_error);
  EXPECT_THROW(huffman_decode({}), std::runtime_error);
}

TEST(ByteEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(byte_entropy_bits({}), 0.0);
  EXPECT_DOUBLE_EQ(byte_entropy_bits(as_bytes("aaaa")), 0.0);
  EXPECT_NEAR(byte_entropy_bits(as_bytes("abab")), 1.0, 1e-9);
  rng r(5);
  const byte_buffer noise = random_bytes(r, 100'000);
  EXPECT_GT(byte_entropy_bits(noise), 7.9);
}

TEST(HuffmanLzss, PipelineBeatsLzssAloneOnText) {
  rng r(6);
  const byte_buffer text = random_text(r, 500'000);
  const huffman_lzss_compressor pipeline(9);
  const lzss_compressor dictionary_only(9);
  const byte_buffer two_stage = pipeline.compress(text);
  const byte_buffer one_stage = dictionary_only.compress(text);
  EXPECT_LT(two_stage.size(), one_stage.size());
  EXPECT_EQ(pipeline.decompress(two_stage), text);
  EXPECT_EQ(pipeline.name(), "lzss+huffman-9");
}

TEST(HuffmanLzss, RoundTripsIncompressible) {
  rng r(7);
  const byte_buffer noise = random_bytes(r, 100'000);
  const huffman_lzss_compressor pipeline(5);
  EXPECT_EQ(pipeline.decompress(pipeline.compress(noise)), noise);
}

}  // namespace
}  // namespace cloudsync
