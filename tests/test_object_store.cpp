#include "storage/object_store.hpp"

#include <gtest/gtest.h>

namespace cloudsync {
namespace {

TEST(ObjectStore, PutGet) {
  object_store store;
  store.put("k", to_buffer("value"));
  const auto v = store.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(*v), "value");
  EXPECT_TRUE(store.head("k"));
}

TEST(ObjectStore, GetMissing) {
  object_store store;
  EXPECT_FALSE(store.get("missing").has_value());
  EXPECT_FALSE(store.head("missing"));
}

TEST(ObjectStore, FakeDeletionRetainsContent) {
  object_store store;
  store.put("k", to_buffer("v1"));
  EXPECT_TRUE(store.remove("k"));
  EXPECT_FALSE(store.get("k").has_value());
  EXPECT_FALSE(store.head("k"));
  // Content is retained for rollback.
  EXPECT_EQ(store.version_count("k"), 1u);
  EXPECT_TRUE(store.undelete("k"));
  EXPECT_EQ(to_string(*store.get("k")), "v1");
}

TEST(ObjectStore, DoubleDeleteReturnsFalse) {
  object_store store;
  store.put("k", to_buffer("v"));
  EXPECT_TRUE(store.remove("k"));
  EXPECT_FALSE(store.remove("k"));
  EXPECT_FALSE(store.remove("unknown"));
}

TEST(ObjectStore, VersionHistory) {
  object_store store;
  store.put("k", to_buffer("v1"));
  store.put("k", to_buffer("v2"));
  store.put("k", to_buffer("v3"));
  EXPECT_EQ(store.version_count("k"), 3u);
  EXPECT_EQ(to_string(*store.get_version("k", 0)), "v1");
  EXPECT_EQ(to_string(*store.get_version("k", 2)), "v3");
  EXPECT_FALSE(store.get_version("k", 3).has_value());
  EXPECT_EQ(to_string(*store.get("k")), "v3");
}

TEST(ObjectStore, PutAfterDeleteRevives) {
  object_store store;
  store.put("k", to_buffer("v1"));
  store.remove("k");
  store.put("k", to_buffer("v2"));
  EXPECT_TRUE(store.head("k"));
  EXPECT_EQ(to_string(*store.get("k")), "v2");
  EXPECT_EQ(store.version_count("k"), 2u);
}

TEST(ObjectStore, ListByPrefix) {
  object_store store;
  store.put("u1/a", byte_buffer{});
  store.put("u1/b", byte_buffer{});
  store.put("u2/c", byte_buffer{});
  store.remove("u1/b");
  EXPECT_EQ(store.list("u1/"), (std::vector<std::string>{"u1/a"}));
  EXPECT_EQ(store.list("").size(), 2u);
  EXPECT_TRUE(store.list("zz/").empty());
}

TEST(ObjectStore, ByteAccounting) {
  object_store store;
  store.put("a", byte_buffer(100, 1));
  store.put("a", byte_buffer(150, 2));
  store.put("b", byte_buffer(50, 3));
  store.remove("b");
  EXPECT_EQ(store.live_bytes(), 150u);
  EXPECT_EQ(store.retained_bytes(), 300u);
}

TEST(ObjectStore, GaugesTrackPutsRemovesAndUndeletes) {
  object_store store;
  store.put("a", byte_buffer(100, 1));
  store.put("a", byte_buffer(150, 2));  // history: 100 retained, 150 live
  store.put("b", byte_buffer(50, 3));
  EXPECT_EQ(store.stats().retained_bytes, 300u);
  EXPECT_EQ(store.stats().live_bytes, 200u);
  store.remove("b");
  EXPECT_EQ(store.stats().retained_bytes, 300u);  // tombstoned, not freed
  EXPECT_EQ(store.stats().live_bytes, 150u);
  store.undelete("b");
  EXPECT_EQ(store.stats().live_bytes, 200u);
  // The incremental gauges agree with the recomputed-from-scratch values.
  EXPECT_EQ(store.stats().retained_bytes, store.retained_bytes());
  EXPECT_EQ(store.stats().live_bytes, store.live_bytes());
}

TEST(ObjectStore, CompactHistoryKeepsLatestIncludingTombstones) {
  object_store store;
  store.put("a", byte_buffer(100, 1));
  store.put("a", byte_buffer(150, 2));
  store.put("b", byte_buffer(50, 3));
  store.put("b", byte_buffer(60, 4));
  store.remove("b");
  EXPECT_EQ(store.compact_history(), 150u);  // a's v1 + b's v1
  EXPECT_EQ(store.stats().retained_bytes, 210u);
  EXPECT_EQ(store.version_count("a"), 1u);
  // Live data and the tombstoned latest version both survive.
  EXPECT_EQ(to_string(*store.get("a")), std::string(150, 2));
  store.undelete("b");
  EXPECT_EQ(store.get("b")->size(), 60u);
  EXPECT_EQ(store.compact_history(), 0u);  // idempotent
}

TEST(ObjectStore, BackendOpStats) {
  object_store store;
  store.put("a", byte_buffer(10, 0));
  store.get("a");
  store.get("missing");
  store.head("a");
  store.remove("a");
  store.list("");
  const backend_op_stats& s = store.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.heads, 1u);
  EXPECT_EQ(s.deletes, 1u);
  EXPECT_EQ(s.lists, 1u);
  EXPECT_EQ(s.bytes_written, 10u);
  EXPECT_EQ(s.bytes_read, 10u);  // the missing get read nothing
  EXPECT_EQ(s.total_ops(), 6u);
  store.reset_stats();
  EXPECT_EQ(store.stats().total_ops(), 0u);
}

TEST(ObjectStore, ListCacheTracksLivenessChanges) {
  // list() serves from a generation-keyed sorted snapshot; every liveness
  // change (put of a new key, remove, undelete, revive-by-put) must
  // invalidate it, and repeated lists between changes must stay coherent.
  object_store store;
  store.put("b", to_buffer("1"));
  EXPECT_EQ(store.list(""), (std::vector<std::string>{"b"}));
  EXPECT_EQ(store.list(""), (std::vector<std::string>{"b"}));  // cached hit
  store.put("a", to_buffer("2"));
  EXPECT_EQ(store.list(""), (std::vector<std::string>{"a", "b"}));
  // Re-putting a live key keeps the live set unchanged: cache stays valid.
  store.put("a", to_buffer("3"));
  EXPECT_EQ(store.list(""), (std::vector<std::string>{"a", "b"}));
  store.remove("a");
  EXPECT_EQ(store.list(""), (std::vector<std::string>{"b"}));
  store.undelete("a");
  EXPECT_EQ(store.list(""), (std::vector<std::string>{"a", "b"}));
  store.remove("b");
  store.put("b", to_buffer("4"));  // revive via put
  EXPECT_EQ(store.list(""), (std::vector<std::string>{"a", "b"}));
}

TEST(ObjectStore, ListPrefixScansCachedSnapshot) {
  object_store store;
  for (const char* k : {"u1/a", "u1/b", "u10/x", "u2/c", "v"}) {
    store.put(k, byte_buffer{});
  }
  // "u1/" must not match "u10/..." — the prefix run is exact.
  EXPECT_EQ(store.list("u1/"), (std::vector<std::string>{"u1/a", "u1/b"}));
  EXPECT_EQ(store.list("u10/"), (std::vector<std::string>{"u10/x"}));
  EXPECT_EQ(store.list("u"),
            (std::vector<std::string>{"u1/a", "u1/b", "u10/x", "u2/c"}));
  EXPECT_EQ(store.list("").size(), 5u);
  EXPECT_EQ(store.key_count(), 5u);
  store.remove("u1/b");
  EXPECT_EQ(store.list("u1/"), (std::vector<std::string>{"u1/a"}));
  EXPECT_EQ(store.key_count(), 5u);  // tombstoned keys still known
}

}  // namespace
}  // namespace cloudsync
