// The parallel runner must behave like a reordered serial loop: every index
// runs exactly once, exceptions propagate, and — because each experiment owns
// its whole simulation world and the caches are pure — parallel + cached runs
// are bit-identical to serial + uncached ones.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cloudsync.hpp"

namespace cloudsync {
namespace {

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  parallel_runner pool(4);
  std::vector<std::atomic<int>> seen(137);
  pool.run_indexed(seen.size(), [&](std::size_t i) { ++seen[i]; });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ParallelRunner, SingleThreadRunsInline) {
  parallel_runner pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  // Inline execution implies strict index order.
  std::vector<std::size_t> order;
  pool.run_indexed(10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ParallelRunner, EmptyAndSingleJobAreFine) {
  parallel_runner pool(4);
  int calls = 0;
  pool.run_indexed(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.run_indexed(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelRunner, ReusableAcrossRuns) {
  parallel_runner pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.run_indexed(20, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelRunner, PropagatesException) {
  parallel_runner pool(4);
  EXPECT_THROW(pool.run_indexed(16,
                                [&](std::size_t i) {
                                  if (i == 7) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives an exception and can run again.
  std::atomic<int> ok{0};
  pool.run_indexed(8, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ParallelRunner, ParallelMapPreservesIndexOrder) {
  parallel_runner pool(4);
  const std::vector<int> out =
      parallel_map_n<int>(pool, 50, [](std::size_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelRunner, ThreadCountAutoDetectIsPositive) {
  EXPECT_GE(parallel_runner::default_thread_count(), 1u);
  parallel_runner pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

/// The acceptance property: a grid evaluated parallel + cached must be
/// bit-identical to the same grid serial + uncached.
TEST(ParallelDeterminism, GridMatchesSerialUncachedExactly) {
  std::vector<std::function<std::uint64_t()>> jobs;
  for (const service_profile& s : all_services()) {
    experiment_config cfg;
    cfg.profile = s;
    cfg.use_content_cache = false;
    jobs.push_back([cfg] { return measure_creation_traffic(cfg, 64 * 1024); });
    jobs.push_back(
        [cfg] { return measure_modification_traffic(cfg, 32 * 1024); });
  }

  std::vector<std::uint64_t> serial(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) serial[i] = jobs[i]();

  std::vector<std::function<std::uint64_t()>> cached_jobs;
  for (const service_profile& s : all_services()) {
    experiment_config cfg;
    cfg.profile = s;
    cfg.use_content_cache = true;
    cached_jobs.push_back(
        [cfg] { return measure_creation_traffic(cfg, 64 * 1024); });
    cached_jobs.push_back(
        [cfg] { return measure_modification_traffic(cfg, 32 * 1024); });
  }

  parallel_runner pool(4);
  std::vector<std::uint64_t> parallel(cached_jobs.size());
  pool.run_indexed(cached_jobs.size(),
                   [&](std::size_t i) { parallel[i] = cached_jobs[i](); });

  EXPECT_EQ(parallel, serial);
}

TEST(ParallelDeterminism, FleetReplayIdenticalAtAnyThreadCount) {
  fleet_config cfg;
  cfg.trace.scale = 0.004;
  cfg.max_files_per_service = 25;
  cfg.trace.max_file_bytes = 256 * 1024;

  cfg.replay_threads = 1;
  const std::vector<fleet_service_report> serial = replay_trace_fleet(cfg);
  cfg.replay_threads = 4;
  const std::vector<fleet_service_report> parallel = replay_trace_fleet(cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].service, parallel[i].service);
    EXPECT_EQ(serial[i].files, parallel[i].files);
    EXPECT_EQ(serial[i].users, parallel[i].users);
    EXPECT_EQ(serial[i].update_bytes, parallel[i].update_bytes);
    EXPECT_EQ(serial[i].sync_traffic, parallel[i].sync_traffic);
    EXPECT_EQ(serial[i].commits, parallel[i].commits);
    EXPECT_DOUBLE_EQ(serial[i].mean_staleness_sec,
                     parallel[i].mean_staleness_sec);
    EXPECT_DOUBLE_EQ(serial[i].bill.total_usd(), parallel[i].bill.total_usd());
  }
}

}  // namespace
}  // namespace cloudsync
