#include "fs/watcher.hpp"

#include <gtest/gtest.h>

namespace cloudsync {
namespace {

sim_time at(double sec) { return sim_time::from_sec(sec); }

TEST(Watcher, QueuesEventsInOrder) {
  memfs fs;
  watcher w(fs);
  fs.create("a", to_buffer("1"), at(1));
  fs.append("a", as_bytes("2"), at(2));
  fs.remove("a", at(3));

  ASSERT_EQ(w.pending(), 3u);
  const auto events = w.drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].op, fs_event::kind::created);
  EXPECT_EQ(events[1].op, fs_event::kind::modified);
  EXPECT_EQ(events[2].op, fs_event::kind::removed);
  EXPECT_TRUE(w.empty());
}

TEST(Watcher, DrainResetsQueueNotHistory) {
  memfs fs;
  watcher w(fs);
  fs.create("a", byte_buffer{}, at(1));
  w.drain();
  fs.create("b", byte_buffer{}, at(2));
  EXPECT_EQ(w.pending(), 1u);
  EXPECT_EQ(w.total_observed(), 2u);
}

TEST(Watcher, PeekDoesNotConsume) {
  memfs fs;
  watcher w(fs);
  EXPECT_EQ(w.peek(), nullptr);
  fs.create("a", byte_buffer{}, at(1));
  ASSERT_NE(w.peek(), nullptr);
  EXPECT_EQ(w.peek()->path, "a");
  EXPECT_EQ(w.pending(), 1u);
}

TEST(Watcher, MissesEventsBeforeConstruction) {
  memfs fs;
  fs.create("old", byte_buffer{}, at(1));
  watcher w(fs);
  EXPECT_TRUE(w.empty());
  fs.create("new", byte_buffer{}, at(2));
  EXPECT_EQ(w.pending(), 1u);
}

TEST(Watcher, ClearDiscards) {
  memfs fs;
  watcher w(fs);
  fs.create("a", byte_buffer{}, at(1));
  w.clear();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.total_observed(), 1u);
}

TEST(Watcher, CoexistsWithOtherObservers) {
  memfs fs;
  int direct = 0;
  fs.subscribe([&](const fs_event&) { ++direct; });
  watcher w(fs);
  fs.create("a", byte_buffer{}, at(1));
  EXPECT_EQ(direct, 1);
  EXPECT_EQ(w.pending(), 1u);
}

}  // namespace
}  // namespace cloudsync
