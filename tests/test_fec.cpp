// The systematic GF(256) erasure codec behind the transfer scheduler's
// striping: XOR parity for R=1, Cauchy Reed–Solomon for R>=2, and the MDS
// property — ANY K of the K+R shards reconstruct the data bit-identically —
// proven exhaustively over every survivor subset, including the hole
// patterns a mid-stripe crash leaves in the sync journal's ack mask.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/fec.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

using shards_t = std::vector<std::vector<std::uint8_t>>;

shards_t make_data(int k, std::size_t len, std::uint64_t seed) {
  rng r(seed);
  shards_t data(static_cast<std::size_t>(k));
  for (auto& s : data) {
    s.resize(len);
    for (auto& b : s) b = static_cast<std::uint8_t>(r.next() & 0xff);
  }
  return data;
}

TEST(GF256, FieldAxiomsSpotChecks) {
  // 1 is the multiplicative identity; 0 annihilates.
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
  // Every nonzero element has a working inverse.
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                         gf256::inv(static_cast<std::uint8_t>(a))),
              1)
        << "a=" << a;
  }
  // Commutativity on a sample of pairs.
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                gf256::mul(static_cast<std::uint8_t>(b),
                           static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Fec, XorParityIsTheR1Code) {
  const fec_params p{3, 1};
  const shards_t data = make_data(3, 16, 42);
  const shards_t parity = fec_encode(p, data);
  ASSERT_EQ(parity.size(), 1u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(parity[0][i], data[0][i] ^ data[1][i] ^ data[2][i]);
  }
}

TEST(Fec, ZeroParityEncodesNothing) {
  const fec_params p{4, 0};
  EXPECT_TRUE(fec_encode(p, make_data(4, 8, 1)).empty());
}

// The MDS property, exhaustively: for K in 1..5 and R in 0..3, EVERY
// C(K+R, K)-choose subset of exactly K survivors decodes bit-identically.
TEST(Fec, AnyKOfKPlusRSubsetReconstructs) {
  for (int k = 1; k <= 5; ++k) {
    for (int r = 0; r <= 3; ++r) {
      const fec_params p{k, r};
      const shards_t data =
          make_data(k, 24, 0x9000u + static_cast<unsigned>(k * 8 + r));
      const shards_t parity = fec_encode(p, data);
      const int n = k + r;

      // Enumerate subsets of {0..n-1} with exactly k members via bitmask.
      for (unsigned mask = 0; mask < (1u << n); ++mask) {
        if (__builtin_popcount(mask) != k) continue;
        shards_t present(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          if (!(mask & (1u << i))) continue;
          present[static_cast<std::size_t>(i)] =
              i < k ? data[static_cast<std::size_t>(i)]
                    : parity[static_cast<std::size_t>(i - k)];
        }
        const shards_t got = fec_decode(p, present);
        ASSERT_EQ(got.size(), static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          EXPECT_EQ(got[static_cast<std::size_t>(i)],
                    data[static_cast<std::size_t>(i)])
              << "k=" << k << " r=" << r << " mask=" << mask << " shard=" << i;
        }
      }
    }
  }
}

// More survivors than strictly needed must also decode (the scheduler hands
// the decoder everything that landed, not a minimal subset).
TEST(Fec, SurplusSurvivorsDecodeToo) {
  const fec_params p{4, 2};
  const shards_t data = make_data(4, 32, 7);
  const shards_t parity = fec_encode(p, data);
  shards_t present(6);
  present[0] = data[0];
  present[2] = data[2];
  present[3] = data[3];  // only data[1] lost, both parities present
  present[4] = parity[0];
  present[5] = parity[1];
  const shards_t got = fec_decode(p, present);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              data[static_cast<std::size_t>(i)]);
  }
}

// The crash pattern: a client striping K=4 data + R=2 parity dies mid-
// stripe after the journal acked chunks {0, 2} out of order. On restart the
// un-acked chunks {1, 3} are exactly the holes; decode from the acked data
// plus both parity shards must return the originals bit-identically.
TEST(Fec, JournalHolePatternAfterMidStripeCrash) {
  const fec_params p{4, 2};
  const shards_t data = make_data(4, 48, 0xdead);
  const shards_t parity = fec_encode(p, data);
  shards_t present(6);
  present[0] = data[0];  // journal ack mask: 1 0 1 0
  present[2] = data[2];
  present[4] = parity[0];
  present[5] = parity[1];
  const shards_t got = fec_decode(p, present);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              data[static_cast<std::size_t>(i)])
        << "shard " << i;
  }
}

TEST(Fec, RejectsInvalidGeometry) {
  EXPECT_THROW(fec_encode({0, 1}, {}), std::invalid_argument);
  EXPECT_THROW(fec_encode({-1, 1}, {}), std::invalid_argument);
  EXPECT_THROW(fec_encode({2, -1}, make_data(2, 4, 1)),
               std::invalid_argument);
  EXPECT_THROW(fec_encode({200, 100}, make_data(200, 1, 1)),
               std::invalid_argument);
  // Ragged shards.
  shards_t ragged = make_data(2, 8, 2);
  ragged[1].resize(4);
  EXPECT_THROW(fec_encode({2, 1}, ragged), std::invalid_argument);
  // Shard-count mismatch.
  EXPECT_THROW(fec_encode({3, 1}, make_data(2, 8, 3)),
               std::invalid_argument);
}

TEST(Fec, DecodeRejectsTooFewSurvivors) {
  const fec_params p{3, 2};
  const shards_t data = make_data(3, 8, 11);
  const shards_t parity = fec_encode(p, data);
  shards_t present(5);
  present[0] = data[0];
  present[4] = parity[1];  // only 2 of 3 needed shards
  EXPECT_THROW(fec_decode(p, present), std::invalid_argument);
}

}  // namespace
}  // namespace cloudsync
