#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/parallel_runner.hpp"
#include "server/session.hpp"
#include "server/sync_server.hpp"
#include "util/sha256.hpp"

namespace cloudsync {
namespace {

workload_params small_params(std::uint64_t seed = 7) {
  workload_params p;
  p.seed = seed;
  p.user_population = 200;
  p.sessions = 40;
  p.files_per_session = 5;
  p.mean_file_bytes = 2048;
  p.identity_pool = 16;
  p.p_pool_identity = 0.5;
  p.p_repeat_in_session = 0.2;
  return p;
}

std::vector<session_result> run_wave(sync_server& srv,
                                     const std::vector<session_workload>& work,
                                     unsigned threads,
                                     const session_options& opts = {}) {
  parallel_runner pool(threads);
  return parallel_map_n<session_result>(
      pool, work.size(), [&](std::size_t i) {
        return run_session(srv, work[i], opts);
      });
}

TEST(SessionWorkload, DeterministicAndDistinctUsers) {
  const workload_params p = small_params();
  const auto a = make_session_workloads(p);
  const auto b = make_session_workloads(p);
  ASSERT_EQ(a.size(), p.sessions);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    ASSERT_EQ(a[i].files.size(), b[i].files.size());
    for (std::size_t f = 0; f < a[i].files.size(); ++f) {
      EXPECT_EQ(a[i].files[f].content_seed, b[i].files[f].content_seed);
      EXPECT_EQ(a[i].files[f].size, b[i].files[f].size);
    }
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i].user, a[j].user);
    }
    EXPECT_GE(a[i].user, 1u);  // scope 0 is the global dedup namespace
  }
}

TEST(SessionWorkload, IdentityMatchesFingerprint) {
  const auto work = make_session_workloads(small_params());
  const session_file& f = work.front().files.front();
  const content_identity id = identity_for(f.content_seed, f.size);
  EXPECT_EQ(id.content.size(), f.size);
  EXPECT_EQ(sha256(id.content.flatten()), id.fp);
  // Memoized: a second resolve is the same identity.
  const content_identity again = identity_for(f.content_seed, f.size);
  EXPECT_EQ(again.fp, id.fp);
}

TEST(SyncServer, SingleSessionCommitsEverything) {
  sync_server srv;
  const auto work = make_session_workloads(small_params());
  const session_workload& w = work.front();
  const session_result res = run_session(srv, w);

  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.files, w.files.size());
  EXPECT_EQ(res.files_uploaded + res.dedup_hits, res.files);
  // Every path is committed and looked up with a server-assigned version.
  EXPECT_EQ(srv.list_paths(w.user).size(), w.files.size());
  for (const session_file& f : w.files) {
    const file_manifest* m = srv.lookup_manifest(w.user, f.path);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->logical_size, f.size);
    EXPECT_EQ(m->version, 1u);
  }
  // Payload traffic only for the uploads the diff asked for.
  EXPECT_GT(res.meter.get(direction::up, traffic_category::payload), 0u);
  EXPECT_GT(res.meter.get(direction::up, traffic_category::metadata), 0u);
}

TEST(SyncServer, ResyncIsAllDuplicates) {
  sync_server srv;
  const auto work = make_session_workloads(small_params());
  const session_workload& w = work.front();
  const session_result first = run_session(srv, w);
  const session_result second = run_session(srv, w);
  EXPECT_EQ(second.dedup_hits, second.files);
  EXPECT_EQ(second.files_uploaded, 0u);
  EXPECT_EQ(second.meter.get(direction::up, traffic_category::payload), 0u);
  EXPECT_LT(second.meter.total(), first.meter.total());
  // Second commit bumps every version.
  for (const session_file& f : w.files) {
    EXPECT_EQ(srv.lookup_manifest(w.user, f.path)->version, 2u);
  }
}

TEST(SyncServer, WithinBatchDedupCatchesRepeats) {
  sync_server srv;
  session_workload w;
  w.user = 42;
  const std::uint64_t seed = 99;
  const std::uint32_t size = size_for_seed(seed, 1024);
  w.files.push_back({"a.dat", seed, size});
  w.files.push_back({"b.dat", seed, size});  // same content, new path
  const session_result res = run_session(srv, w);
  EXPECT_EQ(res.files_uploaded, 1u);
  EXPECT_EQ(res.dedup_hits, 1u);
  // Both paths committed, referencing the same content-addressed object.
  const file_manifest* a = srv.lookup_manifest(42, "a.dat");
  const file_manifest* b = srv.lookup_manifest(42, "b.dat");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->object_key, b->object_key);
  EXPECT_EQ(srv.dedup().unique_count(42), 1u);
}

TEST(SyncServer, DedupScopesArePerUser) {
  sync_server srv;
  const std::uint64_t seed = 5;
  const std::uint32_t size = size_for_seed(seed, 1024);
  session_workload w1{1, {{"x.dat", seed, size}}};
  session_workload w2{2, {{"x.dat", seed, size}}};
  run_session(srv, w1);
  const session_result r2 = run_session(srv, w2);
  // Same bytes, different tenant: no cross-user dedup (determinism contract).
  EXPECT_EQ(r2.files_uploaded, 1u);
  EXPECT_EQ(r2.dedup_hits, 0u);
}

TEST(SyncServer, IdenticalResultsAcrossShardAndThreadCounts) {
  const auto work = make_session_workloads(small_params(11));
  std::vector<std::uint64_t> hashes;
  for (const auto& [shards, threads] :
       std::vector<std::pair<std::uint32_t, unsigned>>{
           {1, 1}, {3, 1}, {3, 2}, {1, 4}}) {
    sync_server srv(server_config{.shards = shards});
    const auto results = run_wave(srv, work, threads);
    hashes.push_back(results_identity_hash(results));
  }
  for (std::size_t i = 1; i < hashes.size(); ++i) {
    EXPECT_EQ(hashes[i], hashes[0]) << "leg " << i;
  }
}

TEST(SyncServer, UnbatchedMetadataCostsMoreEnvelopes) {
  const auto work = make_session_workloads(small_params(3));
  sync_server a, b;
  const auto batched = run_wave(a, work, 1, {.batch_metadata = true});
  const auto unbatched = run_wave(b, work, 1, {.batch_metadata = false});
  std::uint64_t meta_batched = 0, meta_unbatched = 0;
  for (const auto& r : batched)
    meta_batched += r.meter.by_category(traffic_category::metadata);
  for (const auto& r : unbatched)
    meta_unbatched += r.meter.by_category(traffic_category::metadata);
  EXPECT_GT(meta_unbatched, meta_batched);
  // Payload is identical — batching only changes framing.
  std::uint64_t pay_a = 0, pay_b = 0;
  for (const auto& r : batched)
    pay_a += r.meter.by_category(traffic_category::payload);
  for (const auto& r : unbatched)
    pay_b += r.meter.by_category(traffic_category::payload);
  EXPECT_EQ(pay_a, pay_b);
}

TEST(SyncServer, AdmissionLimitBoundsInFlight) {
  server_config cfg;
  cfg.shards = 1;
  cfg.admission_limit = 2;
  sync_server srv(cfg);
  const auto work = make_session_workloads(small_params(17));
  run_wave(srv, work, 4);
  const server_stats st = srv.stats();
  ASSERT_EQ(st.shards.size(), 1u);
  EXPECT_LE(st.shards[0].in_flight_peak, 2u);
  EXPECT_EQ(st.shards[0].sessions_admitted, work.size());
}

TEST(SyncServer, StatsAccountForTheWave) {
  server_config cfg;
  cfg.shards = 4;
  sync_server srv(cfg);
  const auto work = make_session_workloads(small_params(23));
  const auto results = run_wave(srv, work, 2);

  std::uint64_t want_uploads = 0, want_hits = 0, want_files = 0;
  for (const auto& r : results) {
    want_uploads += r.files_uploaded;
    want_hits += r.dedup_hits;
    want_files += r.files;
  }
  const shard_stats agg = srv.stats().aggregate();
  EXPECT_EQ(agg.users, work.size());
  EXPECT_EQ(agg.uploads, want_uploads);
  EXPECT_EQ(agg.dedup_hits, want_hits);
  EXPECT_EQ(agg.dedup_probes, want_files);
  EXPECT_EQ(agg.commits, want_files);
  EXPECT_EQ(agg.commit_batches, work.size());
  EXPECT_EQ(agg.sessions_admitted, work.size());
  EXPECT_EQ(agg.objects, agg.uploads);  // content-addressed: one key per upload
  // Lifecycle histogram: every session entered each active state once and
  // none is still live after the wave drained.
  const auto idx = [](session_state s) { return static_cast<std::size_t>(s); };
  EXPECT_EQ(agg.state_entered[idx(session_state::computing_diff)], work.size());
  EXPECT_EQ(agg.state_entered[idx(session_state::transferring)], work.size());
  EXPECT_EQ(agg.state_entered[idx(session_state::applying)], work.size());
  EXPECT_EQ(agg.state_entered[idx(session_state::complete)], work.size());
  EXPECT_EQ(agg.state_entered[idx(session_state::failed)], 0u);
  for (std::size_t i = 0; i < kSessionStateCount; ++i) {
    EXPECT_EQ(agg.state_live[i], 0u) << to_string(session_state(i));
  }
  // Every user landed on the shard the hash says it should.
  for (const auto& r : results) {
    EXPECT_EQ(r.shard, srv.shard_of(r.user));
  }
}

TEST(SyncServer, ChunkStoreModeStoresManifests) {
  server_config cfg;
  cfg.use_chunk_store = true;
  cfg.chunk_store_chunk_size = 512;
  sync_server srv(cfg);
  const auto work = make_session_workloads(small_params(31));
  const auto results = run_wave(srv, work, 1);
  std::uint64_t uploads = 0;
  for (const auto& r : results) uploads += r.files_uploaded;
  const shard_stats agg = srv.stats().aggregate();
  EXPECT_EQ(agg.manifests, uploads);
  EXPECT_GT(agg.objects, 0u);  // chunk objects live in the object store
  // Traffic identical to whole-object mode: the substrate is server-internal.
  sync_server plain;
  const auto plain_results = run_wave(plain, work, 1);
  EXPECT_EQ(results_identity_hash(results),
            results_identity_hash(plain_results));
}

TEST(SyncServer, VerifyRejectsLyingClient) {
  sync_server srv;
  const content_identity id = identity_for(123, 1024);
  upload_item item;
  item.path = "evil.dat";
  item.object_key = "u9/o/bad";
  item.content = id.content;
  item.fp = fingerprint{};  // claimed fingerprint doesn't match the bytes
  EXPECT_THROW(srv.upload_batch(9, {item}), std::runtime_error);
  EXPECT_EQ(srv.stats().aggregate().verify_failures, 1u);
  EXPECT_EQ(srv.stats().aggregate().uploads, 0u);
}

TEST(SyncServer, EvictUserDropsScopeAndForcesReupload) {
  sync_server srv;
  const auto work = make_session_workloads(small_params(37));
  const session_workload& w = work.front();
  run_session(srv, w);
  EXPECT_GT(srv.dedup().unique_count(w.user), 0u);
  EXPECT_TRUE(srv.evict_user(w.user));
  EXPECT_FALSE(srv.evict_user(w.user));  // already gone
  EXPECT_EQ(srv.dedup().unique_count(w.user), 0u);
  const session_result again = run_session(srv, w);
  // Scope rebuilt from scratch: only in-batch repeats dedup.
  EXPECT_GT(again.files_uploaded, 0u);
}

TEST(SyncServer, ConcurrentWaveIsTornDownCleanly) {
  server_config cfg;
  cfg.shards = 2;
  cfg.admission_limit = 4;
  sync_server srv(cfg);
  const auto work = make_session_workloads(small_params(41));
  const auto results = run_wave(srv, work, 4);
  std::size_t failed = 0;
  for (const auto& r : results) failed += r.failed ? 1 : 0;
  EXPECT_EQ(failed, 0u);
  const server_stats st = srv.stats();
  std::uint64_t users = 0;
  for (const auto& s : st.shards) users += s.users;
  EXPECT_EQ(users, work.size());
}

}  // namespace
}  // namespace cloudsync
