// Rolling checksum property: sliding must equal recomputation at every offset.
#include <gtest/gtest.h>

#include "util/adler32.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

class RollingWindow : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RollingWindow, RollEqualsRecompute) {
  const std::size_t window = GetParam();
  rng r(123);
  const byte_buffer data = random_bytes(r, window * 8 + 13);

  rolling_checksum rc(window);
  rc.reset(byte_view{data}.first(window));
  EXPECT_EQ(rc.value(), weak_checksum(byte_view{data}.first(window)));

  for (std::size_t pos = 1; pos + window <= data.size(); ++pos) {
    rc.roll(data[pos - 1], data[pos + window - 1]);
    ASSERT_EQ(rc.value(),
              weak_checksum(byte_view{data}.subspan(pos, window)))
        << "mismatch at offset " << pos << " window " << window;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, RollingWindow,
                         ::testing::Values(1, 2, 7, 16, 64, 700, 1024, 4096));

TEST(RollingChecksum, TextRollMatches) {
  const std::string text =
      "the quick brown fox jumps over the lazy dog again and again";
  const std::size_t window = 10;
  rolling_checksum rc(window);
  rc.reset(as_bytes(text).first(window));
  for (std::size_t pos = 1; pos + window <= text.size(); ++pos) {
    rc.roll(static_cast<std::uint8_t>(text[pos - 1]),
            static_cast<std::uint8_t>(text[pos + window - 1]));
    ASSERT_EQ(rc.value(), weak_checksum(as_bytes(text).subspan(pos, window)));
  }
}

TEST(WeakChecksum, DiffersOnPermutation) {
  // The b-component makes the checksum order-sensitive.
  EXPECT_NE(weak_checksum(as_bytes("abcd")), weak_checksum(as_bytes("dcba")));
}

TEST(WeakChecksum, EmptyIsZero) { EXPECT_EQ(weak_checksum({}), 0u); }

TEST(WeakChecksum, WindowAccessor) {
  rolling_checksum rc(512);
  EXPECT_EQ(rc.window(), 512u);
}

}  // namespace
}  // namespace cloudsync
