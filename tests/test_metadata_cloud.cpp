// Metadata service + cloud façade, including the IDS mid-layer.
#include <gtest/gtest.h>

#include "chunking/rsync.hpp"
#include "storage/cloud.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

sim_time at(double sec) { return sim_time::from_sec(sec); }

TEST(MetadataService, CommitAndLookup) {
  metadata_service meta;
  const device_id dev = meta.register_device(1);
  meta.commit(1, dev, "a.txt", {"obj1", 100, 80, 1, at(1), false});
  const file_manifest* man = meta.lookup(1, "a.txt");
  ASSERT_NE(man, nullptr);
  EXPECT_EQ(man->object_key, "obj1");
  EXPECT_EQ(man->logical_size, 100u);
  EXPECT_EQ(meta.lookup(2, "a.txt"), nullptr);
  EXPECT_EQ(meta.lookup(1, "other"), nullptr);
}

TEST(MetadataService, NotificationsFanOutToOtherDevices) {
  metadata_service meta;
  const device_id d1 = meta.register_device(1);
  const device_id d2 = meta.register_device(1);
  const device_id d3 = meta.register_device(2);  // different user

  meta.commit(1, d1, "a", {"obj", 10, 10, 1, at(1), false});
  EXPECT_EQ(meta.pending_notifications(1, d1), 0u);  // source excluded
  EXPECT_EQ(meta.pending_notifications(1, d2), 1u);
  EXPECT_EQ(meta.pending_notifications(2, d3), 0u);  // other user untouched

  const auto notes = meta.fetch_notifications(1, d2);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].path, "a");
  EXPECT_FALSE(notes[0].deleted);
  EXPECT_EQ(meta.pending_notifications(1, d2), 0u);  // drained
}

TEST(MetadataService, MarkDeleted) {
  metadata_service meta;
  const device_id d1 = meta.register_device(1);
  const device_id d2 = meta.register_device(1);
  meta.commit(1, d1, "a", {"obj", 10, 10, 1, at(1), false});
  meta.fetch_notifications(1, d2);

  EXPECT_TRUE(meta.mark_deleted(1, d1, "a", at(2)));
  EXPECT_FALSE(meta.mark_deleted(1, d1, "a", at(3)));  // already deleted
  EXPECT_FALSE(meta.mark_deleted(1, d1, "zz", at(3)));
  const auto notes = meta.fetch_notifications(1, d2);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_TRUE(notes[0].deleted);
  EXPECT_TRUE(meta.list(1).empty());
}

TEST(MetadataService, ListSkipsDeleted) {
  metadata_service meta;
  const device_id d = meta.register_device(1);
  meta.commit(1, d, "a", {"o1", 1, 1, 1, at(1), false});
  meta.commit(1, d, "b", {"o2", 1, 1, 1, at(1), false});
  meta.mark_deleted(1, d, "a", at(2));
  EXPECT_EQ(meta.list(1), (std::vector<std::string>{"b"}));
}

TEST(MetadataService, ListCacheInvalidatedByCommitsAndDeletions) {
  metadata_service meta;
  const device_id d = meta.register_device(1);
  meta.commit(1, d, "b", {"o1", 1, 1, 1, at(1), false});
  EXPECT_EQ(meta.list(1), (std::vector<std::string>{"b"}));
  EXPECT_EQ(meta.list(1), (std::vector<std::string>{"b"}));  // cached hit
  meta.commit(1, d, "a", {"o2", 1, 1, 1, at(2), false});
  EXPECT_EQ(meta.list(1), (std::vector<std::string>{"a", "b"}));
  meta.mark_deleted(1, d, "a", at(3));
  EXPECT_EQ(meta.list(1), (std::vector<std::string>{"b"}));
  // Re-commit of a deleted path revives it in the listing.
  meta.commit(1, d, "a", {"o3", 1, 1, 2, at(4), false});
  EXPECT_EQ(meta.list(1), (std::vector<std::string>{"a", "b"}));
  // Per-user caches are independent.
  EXPECT_TRUE(meta.list(2).empty());
}

TEST(MetadataService, CommitBatchMatchesPerFileCommits) {
  metadata_service meta;
  const device_id d1 = meta.register_device(1);
  const device_id d2 = meta.register_device(1);
  std::vector<manifest_commit> batch;
  batch.push_back({"x", {"ox", 5, 5, 1, at(1), false}});
  batch.push_back({"y", {"oy", 6, 6, 1, at(1), false}});
  meta.commit_batch(1, d1, std::move(batch));
  // One notification per entry, in batch order, source device excluded.
  EXPECT_EQ(meta.pending_notifications(1, d1), 0u);
  const auto notes = meta.fetch_notifications(1, d2);
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_EQ(notes[0].path, "x");
  EXPECT_EQ(notes[1].path, "y");
  EXPECT_EQ(meta.list(1), (std::vector<std::string>{"x", "y"}));
  ASSERT_NE(meta.lookup(1, "x"), nullptr);
  EXPECT_EQ(meta.lookup(1, "x")->object_key, "ox");
}

TEST(Cloud, PutAndContent) {
  cloud cl;
  const device_id dev = cl.attach_device(1);
  cl.put_file(1, dev, "f", to_buffer("hello"), 5, at(1));
  const auto content = cl.file_content(1, "f");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(to_string(*content), "hello");
  const file_manifest* man = cl.manifest(1, "f");
  ASSERT_NE(man, nullptr);
  EXPECT_EQ(man->version, 1u);
  EXPECT_EQ(man->logical_size, 5u);
}

TEST(Cloud, PutNewVersionSupersedes) {
  cloud cl;
  const device_id dev = cl.attach_device(1);
  cl.put_file(1, dev, "f", to_buffer("v1"), 2, at(1));
  cl.put_file(1, dev, "f", to_buffer("v2!"), 3, at(2));
  EXPECT_EQ(to_string(*cl.file_content(1, "f")), "v2!");
  EXPECT_EQ(cl.manifest(1, "f")->version, 2u);
  // RESTful update pattern: the old object was DELETEd.
  EXPECT_GE(cl.store().stats().deletes, 1u);
}

TEST(Cloud, FakeDeletionKeepsObject) {
  cloud cl;
  const device_id dev = cl.attach_device(1);
  cl.put_file(1, dev, "f", to_buffer("data"), 4, at(1));
  const std::string key = cl.manifest(1, "f")->object_key;
  EXPECT_TRUE(cl.delete_file(1, dev, "f", at(2)));
  EXPECT_FALSE(cl.file_content(1, "f").has_value());
  // Content retained in the store (version rollback support).
  EXPECT_EQ(cl.store().version_count(key), 1u);
  EXPECT_FALSE(cl.delete_file(1, dev, "f", at(3)));
}

TEST(Cloud, ApplyDeltaThroughMidLayer) {
  cloud cl;
  const device_id dev = cl.attach_device(1);
  rng r(1);
  byte_buffer v1 = random_bytes(r, 50'000);
  cl.put_file(1, dev, "f", v1, v1.size(), at(1));

  byte_buffer v2 = v1;
  v2[25'000] ^= 0xff;
  const file_signature sig = compute_signature(v1, 10 * 1024);
  const file_delta delta = compute_delta(sig, v2);

  const auto puts_before = cl.store().stats().puts;
  const auto gets_before = cl.store().stats().gets;
  const auto dels_before = cl.store().stats().deletes;
  cl.apply_file_delta(1, dev, "f", delta, at(2));

  // MODIFY was transformed into GET + PUT + DELETE (§4.3).
  EXPECT_EQ(cl.store().stats().gets, gets_before + 1);
  EXPECT_EQ(cl.store().stats().puts, puts_before + 1);
  EXPECT_EQ(cl.store().stats().deletes, dels_before + 1);

  EXPECT_EQ(to_string(*cl.file_content(1, "f")), to_string(v2));
  EXPECT_EQ(cl.manifest(1, "f")->version, 2u);
  EXPECT_EQ(cl.manifest(1, "f")->stored_size, delta.literal_bytes());
}

TEST(Cloud, ApplyDeltaToUnknownFileThrows) {
  cloud cl;
  const device_id dev = cl.attach_device(1);
  file_delta delta;
  delta.block_size = 1024;
  EXPECT_THROW(cl.apply_file_delta(1, dev, "ghost", delta, at(1)),
               std::runtime_error);
}

TEST(Cloud, UsersAreIsolated) {
  cloud cl;
  const device_id d1 = cl.attach_device(1);
  cl.put_file(1, d1, "f", to_buffer("mine"), 4, at(1));
  EXPECT_FALSE(cl.file_content(2, "f").has_value());
}

TEST(Cloud, DedupEngineWiredFromConfig) {
  cloud cl(cloud_config{{dedup_granularity::full_file, 4096, true}});
  EXPECT_EQ(cl.dedup().policy().granularity, dedup_granularity::full_file);
  EXPECT_TRUE(cl.dedup().policy().cross_user);
}

}  // namespace
}  // namespace cloudsync
