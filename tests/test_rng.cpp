#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace cloudsync {
namespace {

TEST(Rng, Deterministic) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInBounds) {
  rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
  }
}

TEST(Rng, UniformRangeInclusive) {
  rng r(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  rng r(9);
  running_stats st;
  for (int i = 0; i < 50'000; ++i) {
    const double v = r.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    st.add(v);
  }
  EXPECT_NEAR(st.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  rng r(10);
  running_stats st;
  for (int i = 0; i < 100'000; ++i) st.add(r.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalMedian) {
  rng r(11);
  std::vector<double> v;
  for (int i = 0; i < 50'000; ++i) v.push_back(r.lognormal(8.92, 3.11));
  empirical_cdf cdf(std::move(v));
  // Median of lognormal = e^mu ≈ 7.5 KB.
  EXPECT_NEAR(cdf.median(), std::exp(8.92), std::exp(8.92) * 0.15);
}

TEST(Rng, ExponentialMean) {
  rng r(12);
  running_stats st;
  for (int i = 0; i < 100'000; ++i) st.add(r.exponential(0.5));
  EXPECT_NEAR(st.mean(), 2.0, 0.05);
}

TEST(Rng, ZipfSkewsLow) {
  rng r(13);
  std::size_t low = 0;
  constexpr int kDraws = 10'000;
  for (int i = 0; i < kDraws; ++i) {
    if (r.zipf(1000, 1.2) < 10) ++low;
  }
  // A zipf(1.2) distribution concentrates heavily on the first ranks.
  EXPECT_GT(low, kDraws / 3);
}

TEST(Rng, ChanceExtremes) {
  rng r(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RandomBytes, SizeAndDeterminism) {
  rng a(15), b(15);
  const byte_buffer x = random_bytes(a, 1000);
  const byte_buffer y = random_bytes(b, 1000);
  EXPECT_EQ(x.size(), 1000u);
  EXPECT_EQ(x, y);
}

TEST(RandomBytes, OddSizes) {
  rng r(16);
  for (std::size_t n : {0, 1, 7, 8, 9, 15}) {
    EXPECT_EQ(random_bytes(r, n).size(), n);
  }
}

TEST(RandomText, LooksLikeWords) {
  rng r(17);
  const byte_buffer t = random_text(r, 500);
  EXPECT_EQ(t.size(), 500u);
  int separators = 0;
  for (std::uint8_t c : t) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                c == ' ' || c == '\n')
        << int(c);
    separators += c == ' ' || c == '\n';
  }
  EXPECT_GT(separators, 50);
}

TEST(SyntheticPayload, HitsTargetRatioApproximately) {
  rng r(18);
  const byte_buffer p = synthetic_payload(r, 100'000, 2.0);
  EXPECT_EQ(p.size(), 100'000u);
  // Roughly half of the runs should be single-byte fills.
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < p.size(); ++i) repeats += p[i] == p[i - 1];
  EXPECT_GT(repeats, p.size() / 3);
  EXPECT_LT(repeats, p.size() * 3 / 4);
}

TEST(SyntheticPayload, RatioOneIsRandom) {
  rng r(19);
  const byte_buffer p = synthetic_payload(r, 10'000, 1.0);
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < p.size(); ++i) repeats += p[i] == p[i - 1];
  EXPECT_LT(repeats, 200u);  // ~1/256 expected
}

}  // namespace
}  // namespace cloudsync
