// Sync engine integration: end-to-end state convergence and the mechanics
// behind the paper's findings (IDS, BDS, dedup participation, batching).
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace cloudsync {
namespace {

experiment_config cfg_for(service_profile p,
                          access_method m = access_method::pc_client) {
  experiment_config cfg{std::move(p)};
  cfg.method = m;
  return cfg;
}

TEST(SyncEngine, CreationReachesCloud) {
  experiment_env env(cfg_for(google_drive()));
  station& st = env.primary();
  st.fs.create("docs/a.txt", to_buffer("hello cloud"), env.clock().now());
  env.settle();

  const auto content = env.the_cloud().file_content(0, "docs/a.txt");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(to_string(*content), "hello cloud");
  EXPECT_EQ(st.client->commit_count(), 1u);
  EXPECT_GT(st.client->meter().total(), 0u);
}

TEST(SyncEngine, ModificationUpdatesCloud) {
  experiment_env env(cfg_for(google_drive()));
  station& st = env.primary();
  st.fs.create("f", to_buffer("version one"), env.clock().now());
  env.settle();
  st.fs.write("f", to_buffer("version two, longer"), env.clock().now());
  env.settle();
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "f")),
            "version two, longer");
  EXPECT_EQ(env.the_cloud().manifest(0, "f")->version, 2u);
}

TEST(SyncEngine, DeletionIsFake) {
  experiment_env env(cfg_for(box()));
  station& st = env.primary();
  st.fs.create("f", to_buffer("data"), env.clock().now());
  env.settle();
  const std::string key = env.the_cloud().manifest(0, "f")->object_key;
  st.fs.remove("f", env.clock().now());
  env.settle();
  EXPECT_FALSE(env.the_cloud().file_content(0, "f").has_value());
  EXPECT_EQ(env.the_cloud().store().version_count(key), 1u);  // retained
}

TEST(SyncEngine, CreateThenDeleteBeforeSyncIsFree) {
  // Under a deferment window, create+delete cancels out entirely.
  experiment_env env(cfg_for(onedrive()));  // 10.5 s defer
  station& st = env.primary();
  const auto snap = st.client->meter().snap();
  env.clock().schedule_at(sim_time::from_sec(1), [&] {
    st.fs.create("tmp", to_buffer("scratch"), env.clock().now());
  });
  env.clock().schedule_at(sim_time::from_sec(2), [&] {
    st.fs.remove("tmp", env.clock().now());
  });
  env.settle();
  EXPECT_EQ(experiment_env::traffic_since(st, snap), 0u);
  EXPECT_FALSE(env.the_cloud().file_content(0, "tmp").has_value());
}

TEST(SyncEngine, RenameMovesCloudFile) {
  experiment_env env(cfg_for(box()));
  station& st = env.primary();
  st.fs.create("old", to_buffer("content"), env.clock().now());
  env.settle();
  st.fs.rename("old", "new", env.clock().now());
  env.settle();
  EXPECT_FALSE(env.the_cloud().file_content(0, "old").has_value());
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "new")), "content");
}

TEST(SyncEngine, IdsShipsDeltaNotFile) {
  experiment_env env(cfg_for(dropbox()));
  station& st = env.primary();
  const byte_buffer original = make_compressed_file(env.random(), 1 * MiB);
  st.fs.create("big", original, env.clock().now());
  env.settle();

  const auto snap = st.client->meter().snap();
  modify_random_byte(st.fs, "big", env.random(), env.clock().now());
  env.settle();
  const std::uint64_t traffic = experiment_env::traffic_since(st, snap);
  // One ~10 KB chunk + ~40 KB overhead — never the megabyte.
  EXPECT_LT(traffic, 120 * KiB);
  // Cloud converged to the modified content.
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "big")),
            to_string(st.fs.read("big")));
}

TEST(SyncEngine, FullFileServiceReuploadsEverything) {
  experiment_env env(cfg_for(google_drive()));
  station& st = env.primary();
  const byte_buffer original = make_compressed_file(env.random(), 1 * MiB);
  st.fs.create("big", original, env.clock().now());
  env.settle();

  const auto snap = st.client->meter().snap();
  modify_random_byte(st.fs, "big", env.random(), env.clock().now());
  env.settle();
  EXPECT_GT(experiment_env::traffic_since(st, snap), 1 * MiB);
}

TEST(SyncEngine, DedupSkipsDuplicateUpload) {
  experiment_env env(cfg_for(ubuntu_one()));
  station& st = env.primary();
  const byte_buffer data = make_compressed_file(env.random(), 512 * KiB);
  st.fs.create("one", data, env.clock().now());
  env.settle();

  const auto snap = st.client->meter().snap();
  st.fs.create("two", data, env.clock().now());  // identical content
  env.settle();
  // Full-file dedup: second upload costs only metadata.
  EXPECT_LT(experiment_env::traffic_since(st, snap), 50 * KiB);
  EXPECT_TRUE(env.the_cloud().file_content(0, "two").has_value());
}

TEST(SyncEngine, CrossUserDedupOnUbuntuOne) {
  experiment_env env(cfg_for(ubuntu_one()));
  station& a = env.primary();
  station& b = env.add_station(1);
  const byte_buffer data = make_compressed_file(env.random(), 512 * KiB);
  a.fs.create("f", data, env.clock().now());
  env.settle();

  const auto snap = b.client->meter().snap();
  b.fs.create("f", data, env.clock().now());
  env.settle();
  EXPECT_LT(experiment_env::traffic_since(b, snap), 50 * KiB);
}

TEST(SyncEngine, NoCrossUserDedupOnDropbox) {
  experiment_env env(cfg_for(dropbox()));
  station& a = env.primary();
  station& b = env.add_station(1);
  const byte_buffer data = make_compressed_file(env.random(), 512 * KiB);
  a.fs.create("f", data, env.clock().now());
  env.settle();

  const auto snap = b.client->meter().snap();
  b.fs.create("f", data, env.clock().now());
  env.settle();
  EXPECT_GT(experiment_env::traffic_since(b, snap), 512 * KiB);
}

TEST(SyncEngine, CompressionShrinksTextUpload) {
  experiment_env dropbox_env(cfg_for(dropbox()));
  experiment_env gdrive_env(cfg_for(google_drive()));
  const std::uint64_t x = 2 * MiB;

  station& db = dropbox_env.primary();
  db.fs.create("t.txt", make_text_file(dropbox_env.random(), x),
               dropbox_env.clock().now());
  dropbox_env.settle();

  station& gd = gdrive_env.primary();
  gd.fs.create("t.txt", make_text_file(gdrive_env.random(), x),
               gdrive_env.clock().now());
  gdrive_env.settle();

  EXPECT_LT(db.client->meter().total(), gd.client->meter().total() * 3 / 4);
}

TEST(SyncEngine, DownloadRestoresRemoteFile) {
  experiment_env env(cfg_for(google_drive()));
  station& st = env.primary();
  st.fs.create("f", to_buffer("remote data"), env.clock().now());
  env.settle();

  const auto snap = st.client->meter().snap();
  st.client->download("f");
  env.settle();
  EXPECT_GT(experiment_env::traffic_since(st, snap), 0u);
}

TEST(SyncEngine, MultiDeviceNotificationFlow) {
  experiment_env env(cfg_for(box()));
  station& laptop = env.primary();
  station& desktop = env.add_station(0);  // same user, second device

  laptop.fs.create("shared.doc", to_buffer("v1 content"), env.clock().now());
  env.settle();

  EXPECT_EQ(env.the_cloud().metadata().pending_notifications(
                0, desktop.client->device()),
            1u);
  const std::size_t applied = desktop.client->poll_remote_changes();
  env.settle();
  EXPECT_EQ(applied, 1u);
  EXPECT_GT(desktop.client->meter().total(direction::down), 0u);
}

TEST(SyncEngine, FixedDeferBatchesRapidUpdates) {
  // Google Drive defers 4.2 s: five appends 1 s apart → one commit.
  experiment_env env(cfg_for(google_drive()));
  station& st = env.primary();
  st.fs.create("doc", byte_buffer{}, env.clock().now());
  env.settle();
  const std::uint64_t commits_before = st.client->commit_count();

  for (int i = 1; i <= 5; ++i) {
    env.clock().schedule_at(sim_time::from_sec(10 + i), [&] {
      append_random(st.fs, "doc", env.random(), 1024, env.clock().now());
    });
  }
  env.settle();
  EXPECT_EQ(st.client->commit_count() - commits_before, 1u);
  EXPECT_EQ(env.the_cloud().file_content(0, "doc")->size(), 5 * 1024u);
}

TEST(SyncEngine, NoDeferSyncsEachUpdate) {
  // Box (no defer): five appends spaced beyond its ~6 s commit-processing
  // time → five separate commits.
  experiment_env env(cfg_for(box()));
  station& st = env.primary();
  st.fs.create("doc", byte_buffer{}, env.clock().now());
  env.settle();
  const std::uint64_t commits_before = st.client->commit_count();

  for (int i = 1; i <= 5; ++i) {
    env.clock().schedule_at(sim_time::from_sec(10 + 10 * i), [&] {
      append_random(st.fs, "doc", env.random(), 1024, env.clock().now());
    });
  }
  env.settle();
  EXPECT_EQ(st.client->commit_count() - commits_before, 5u);
}

TEST(SyncEngine, SlowCommitEngineBatchesFastStreams) {
  // Box's ~6 s commit processing coalesces a 1-per-second stream.
  experiment_env env(cfg_for(box()));
  station& st = env.primary();
  st.fs.create("doc", byte_buffer{}, env.clock().now());
  env.settle();
  const std::uint64_t commits_before = st.client->commit_count();
  for (int i = 1; i <= 12; ++i) {
    env.clock().schedule_at(sim_time::from_sec(30 + i), [&] {
      append_random(st.fs, "doc", env.random(), 1024, env.clock().now());
    });
  }
  env.settle();
  const std::uint64_t commits = st.client->commit_count() - commits_before;
  EXPECT_LT(commits, 6u);
  EXPECT_GE(commits, 2u);
  EXPECT_EQ(env.the_cloud().file_content(0, "doc")->size(), 12 * 1024u);
}

TEST(SyncEngine, SlowNetworkBatchesNaturally) {
  // §6.2 Condition 1: on a slow link, a large transfer in flight forces the
  // following updates to coalesce.
  experiment_config cfg = cfg_for(box());
  cfg.link = link_config::beijing();
  experiment_env env(cfg);
  station& st = env.primary();
  st.fs.create("doc", byte_buffer{}, env.clock().now());
  env.settle();
  const std::uint64_t commits_before = st.client->commit_count();

  // 500 KB first append takes ~2.5 s at 1.6 Mbps; the next appends (1 s
  // apart) land while it is in flight.
  env.clock().schedule_at(sim_time::from_sec(10), [&] {
    append_random(st.fs, "doc", env.random(), 500 * KiB, env.clock().now());
  });
  for (int i = 1; i <= 3; ++i) {
    env.clock().schedule_at(sim_time::from_sec(10 + i), [&] {
      append_random(st.fs, "doc", env.random(), 1024, env.clock().now());
    });
  }
  env.settle();
  EXPECT_LT(st.client->commit_count() - commits_before, 4u);
  EXPECT_EQ(env.the_cloud().file_content(0, "doc")->size(),
            500 * KiB + 3 * 1024);
}

TEST(SyncEngine, ShadowTracksRenamedFiles) {
  experiment_env env(cfg_for(dropbox()));
  station& st = env.primary();
  const byte_buffer data = make_compressed_file(env.random(), 200 * KiB);
  st.fs.create("a", data, env.clock().now());
  env.settle();
  st.fs.rename("a", "b", env.clock().now());
  env.settle();
  // After the rename, a modification to "b" must still be delta-synced
  // against its shadow.
  const auto snap = st.client->meter().snap();
  modify_random_byte(st.fs, "b", env.random(), env.clock().now());
  env.settle();
  EXPECT_LT(experiment_env::traffic_since(st, snap), 120 * KiB);
}

TEST(SyncEngine, UdsByteCounterBatchesUntilThreshold) {
  // UDS-style deferment: 1 KB appends every second, 16 KB threshold →
  // commits every ~16 appends, TUE near 1 (paper §6.1 Case 1).
  byte_counter_defer::params uds;
  uds.threshold_bytes = 16 * KiB;
  uds.max_wait = sim_time::from_sec(120);
  service_profile profile = with_defer(box(), defer_config::uds(uds));
  profile.commit_processing = sim_time{};

  experiment_config cfg = cfg_for(profile);
  const auto res = run_append_experiment(cfg, 1.0, 1.0, 64 * KiB);
  EXPECT_LE(res.commits, 6u);
  EXPECT_LT(res.tue, 8.0);
}

TEST(SyncEngine, UdsMaxWaitBoundsLatency) {
  // A single small update must not wait forever: the max_wait deadline
  // commits it.
  byte_counter_defer::params uds;
  uds.threshold_bytes = 1 * MiB;
  uds.max_wait = sim_time::from_sec(10);
  const service_profile profile = with_defer(box(), defer_config::uds(uds));

  experiment_env env(cfg_for(profile));
  station& st = env.primary();
  env.clock().schedule_at(sim_time::from_sec(1), [&] {
    st.fs.create("note.txt", to_buffer("tiny"), env.clock().now());
  });
  env.settle();
  EXPECT_TRUE(env.the_cloud().file_content(0, "note.txt").has_value());
  // Committed at the deadline (~11 s), not at the byte threshold (never).
  EXPECT_GE(env.clock().now(), sim_time::from_sec(11));
}

TEST(SyncEngine, ChunkStoreSubstrateConvergesWithIds) {
  experiment_config cfg = cfg_for(dropbox());
  cfg.use_chunk_store = true;
  experiment_env env(cfg);
  station& st = env.primary();
  const byte_buffer original = make_compressed_file(env.random(), 1 * MiB);
  st.fs.create("big", original, env.clock().now());
  env.settle();

  modify_random_byte(st.fs, "big", env.random(), env.clock().now());
  env.settle();
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "big")),
            to_string(st.fs.read("big")));
  EXPECT_TRUE(env.the_cloud().uses_chunk_store());
}

TEST(SyncEngine, DownloadMaterialisesLocally) {
  experiment_env env(cfg_for(box()));
  station& laptop = env.primary();
  station& desktop = env.add_station(0);
  laptop.fs.create("doc.txt", to_buffer("from laptop"), env.clock().now());
  env.settle();

  EXPECT_FALSE(desktop.fs.exists("doc.txt"));
  desktop.client->poll_remote_changes();
  env.settle();
  ASSERT_TRUE(desktop.fs.exists("doc.txt"));
  EXPECT_EQ(to_string(desktop.fs.read("doc.txt")), "from laptop");
  // The materialised download must not bounce back as an upload.
  EXPECT_FALSE(desktop.client->has_pending());
}

TEST(SyncEngine, RemoteDeletionRemovesLocalCopy) {
  experiment_env env(cfg_for(box()));
  station& laptop = env.primary();
  station& desktop = env.add_station(0);
  laptop.fs.create("doc.txt", to_buffer("v1"), env.clock().now());
  env.settle();
  desktop.client->poll_remote_changes();
  env.settle();
  ASSERT_TRUE(desktop.fs.exists("doc.txt"));

  laptop.fs.remove("doc.txt", env.clock().now());
  env.settle();
  desktop.client->poll_remote_changes();
  env.settle();
  EXPECT_FALSE(desktop.fs.exists("doc.txt"));
}

TEST(SyncEngine, ConcurrentEditsMakeConflictedCopy) {
  // OneDrive's 10.5 s defer gives the desktop time to edit before its own
  // version uploads; the laptop's version lands in the cloud first.
  experiment_env env(cfg_for(onedrive()));
  station& laptop = env.primary();
  station& desktop = env.add_station(0);

  laptop.fs.create("notes.txt", to_buffer("base"), env.clock().now());
  env.settle();
  desktop.client->poll_remote_changes();
  env.settle();

  // Laptop edits and syncs.
  laptop.fs.write("notes.txt", to_buffer("laptop version"),
                  env.clock().now());
  env.settle();
  // Desktop edits locally (still pending)…
  desktop.fs.write("notes.txt", to_buffer("desktop version"),
                   env.clock().now());
  // …then learns about the remote change before its own commit fires.
  desktop.client->poll_remote_changes();
  env.settle();

  EXPECT_EQ(desktop.client->conflict_count(), 1u);
  EXPECT_EQ(to_string(desktop.fs.read("notes.txt")), "laptop version");
  ASSERT_TRUE(desktop.fs.exists("notes.txt (conflicted copy)"));
  EXPECT_EQ(to_string(desktop.fs.read("notes.txt (conflicted copy)")),
            "desktop version");
  // The conflicted copy syncs to the cloud like any user file.
  EXPECT_TRUE(env.the_cloud()
                  .file_content(0, "notes.txt (conflicted copy)")
                  .has_value());
}

TEST(SyncEngine, StaleBaseUploadDivertsToConflictedCopy) {
  // Device B edits on top of v1 while device A has already pushed v2: B's
  // commit must not clobber v2 (parent-revision check) — B's content lands
  // as a conflicted copy instead.
  experiment_env env(cfg_for(box()));
  station& a = env.primary();
  station& b = env.add_station(0);

  a.fs.create("doc", to_buffer("v1"), env.clock().now());
  env.settle();
  b.client->poll_remote_changes();  // B adopts v1 as its base
  env.settle();

  a.fs.write("doc", to_buffer("v2 from A"), env.clock().now());
  env.settle();
  // B edits without polling first.
  b.fs.write("doc", to_buffer("B's stale edit"), env.clock().now());
  env.settle();

  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "doc")), "v2 from A");
  EXPECT_EQ(b.client->conflict_count(), 1u);
  const auto conflict =
      env.the_cloud().file_content(0, "doc (conflicted copy)");
  ASSERT_TRUE(conflict.has_value());
  EXPECT_EQ(to_string(*conflict), "B's stale edit");
}

TEST(SyncEngine, FreshBaseUploadOverwritesNormally) {
  // The same flow with a poll in between must NOT conflict.
  experiment_env env(cfg_for(box()));
  station& a = env.primary();
  station& b = env.add_station(0);
  a.fs.create("doc", to_buffer("v1"), env.clock().now());
  env.settle();
  b.client->poll_remote_changes();
  env.settle();
  a.fs.write("doc", to_buffer("v2 from A"), env.clock().now());
  env.settle();
  b.client->poll_remote_changes();  // B refreshes its base to v2
  env.settle();
  b.fs.write("doc", to_buffer("v3 from B"), env.clock().now());
  env.settle();
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "doc")), "v3 from B");
  EXPECT_EQ(b.client->conflict_count(), 0u);
}

TEST(SyncEngine, PeriodicPollKeepsSecondDeviceInSync) {
  experiment_env env(cfg_for(box()));
  station& laptop = env.primary();
  station& desktop = env.add_station(0);
  desktop.client->enable_periodic_poll(sim_time::from_sec(30),
                                       sim_time::from_sec(600));

  env.clock().schedule_at(sim_time::from_sec(10), [&] {
    laptop.fs.create("a.txt", to_buffer("first"), env.clock().now());
  });
  env.clock().schedule_at(sim_time::from_sec(120), [&] {
    laptop.fs.write("a.txt", to_buffer("second version"), env.clock().now());
  });
  env.settle();

  // The desktop polled its way through both versions; its download traffic
  // covers both payloads plus the periodic poll exchanges.
  EXPECT_GT(desktop.client->meter().total(direction::down),
            std::string("first").size() + std::string("second version").size());
  EXPECT_GT(desktop.client->exchange_count(), 10u);  // ~20 polls
  EXPECT_EQ(env.the_cloud().metadata().pending_notifications(
                0, desktop.client->device()),
            0u);
}

TEST(SyncEngine, PeriodicPollStopsAtHorizon) {
  experiment_env env(cfg_for(box()));
  station& st = env.primary();
  st.client->enable_periodic_poll(sim_time::from_sec(10),
                                  sim_time::from_sec(100));
  env.settle();
  EXPECT_LE(env.clock().now(), sim_time::from_sec(101));
  EXPECT_LE(st.client->exchange_count(), 11u);
}

TEST(SyncEngine, WarmConnectionSkipsMeteringHandshake) {
  experiment_env env(cfg_for(google_drive()));
  EXPECT_EQ(env.primary().client->meter().total(), 0u);
  EXPECT_EQ(env.primary().client->handshake_count(), 1u);
}

}  // namespace
}  // namespace cloudsync
