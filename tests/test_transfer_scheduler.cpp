// The fault-adaptive parallel transfer scheduler: clean-link byte
// invisibility, the controller's escalation lattice, striped dispatch with
// parity/hedge accounting, mid-stripe crash recovery through the journal's
// out-of-order ack mask, and determinism across thread counts.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"

namespace cloudsync {
namespace {

constexpr std::uint64_t kFileBytes = 96 * KiB;
constexpr std::size_t kChunkBytes = 8 * KiB;  // 12 chunks per upload

experiment_config transfer_cfg(double intensity, bool enabled, bool pinned,
                               int k, int r, std::uint64_t seed = 1234) {
  experiment_config cfg{dropbox()};
  cfg.method = access_method::pc_client;
  cfg.link = link_config::beijing();
  cfg.seed = seed;
  cfg.journal = true;
  cfg.recovery.chunk_bytes = kChunkBytes;
  if (intensity > 0) cfg.faults = fault_plan::degraded(intensity);
  cfg.transfer.enabled = enabled;
  if (pinned) {
    cfg.transfer.pinned = true;
    cfg.transfer.pin = {k, r, sim_time::from_sec(2)};
  }
  return cfg;
}

invariant_report check_all(experiment_env& env, station& st) {
  invariant_report report;
  check_convergence(st.fs, env.the_cloud(), st.user, report);
  check_journal_quiescent(st.journal, env.the_cloud(), report);
  check_no_duplicate_commits(st.journal, env.the_cloud(), st.user, report);
  const traffic_meter aggregate = st.aggregate_meter();
  std::vector<const traffic_meter*> parts;
  for (const traffic_meter& m : st.retired_meters) parts.push_back(&m);
  if (st.client) parts.push_back(&st.client->meter());
  check_meter_conservation(aggregate, parts, report);
  return report;
}

bool same_result(const transfer_run_result& a, const transfer_run_result& b) {
  return a.delay_samples_sec == b.delay_samples_sec &&
         a.total_traffic == b.total_traffic &&
         a.payload_traffic == b.payload_traffic &&
         a.retry_traffic == b.retry_traffic &&
         a.redundancy_traffic == b.redundancy_traffic &&
         a.resume_traffic == b.resume_traffic && a.tue == b.tue &&
         a.retries == b.retries && a.requeues == b.requeues &&
         a.faults_injected == b.faults_injected &&
         a.sched.stripes == b.sched.stripes &&
         a.sched.hedges_fired == b.sched.hedges_fired &&
         a.sched.reconstructions == b.sched.reconstructions;
}

// ---------------------------------------------------------------------------
// Clean link: enabling the adaptive scheduler must be byte-invisible.
// ---------------------------------------------------------------------------

TEST(TransferScheduler, CleanLinkIsByteInvisible) {
  const transfer_run_result off = run_transfer_experiment(
      transfer_cfg(0.0, /*enabled=*/false, false, 0, 0), 4, kFileBytes);
  const transfer_run_result on = run_transfer_experiment(
      transfer_cfg(0.0, /*enabled=*/true, false, 0, 0), 4, kFileBytes);

  EXPECT_TRUE(same_result(off, on));
  EXPECT_EQ(on.redundancy_traffic, 0u);
  EXPECT_EQ(on.sched.stripes, 0u);  // the controller never escalated
  EXPECT_GT(on.sched.decisions, 0u);
  EXPECT_EQ(on.sched.escalations, 0u);
  // The controller observed the clean exchanges without spending anything.
  EXPECT_GT(on.sched.observed_success, 0u);
  EXPECT_EQ(on.sched.observed_faults, 0u);
}

// ---------------------------------------------------------------------------
// Controller lattice: observed fault rate drives (K, R) escalation.
// ---------------------------------------------------------------------------

TEST(TransferScheduler, ControllerEscalatesWithFaultRate) {
  traffic_meter meter;
  transfer_policy pol;
  pol.enabled = true;
  transfer_scheduler sched(link_config::beijing(), tcp_config{}, meter, pol,
                           shard_retry_policy{}, shard_wire_costs{}, nullptr);

  // Below min_samples the decision stays single-connection.
  for (int i = 0; i < 4; ++i) sched.observe_fault();
  EXPECT_FALSE(sched.decide().striped());

  // A clean window keeps it single too.
  for (int i = 0; i < 64; ++i) {
    sched.observe_success(sim_time::from_msec(800));
  }
  EXPECT_FALSE(sched.decide().striped());

  // 3/64 faulted ≈ 4.7% → (2,1).
  for (int i = 0; i < 3; ++i) sched.observe_fault();
  transfer_decision d = sched.decide();
  EXPECT_EQ(d.connections, 2);
  EXPECT_EQ(d.parity, 1);
  // Hedge timeout: p95 of the 800ms successes × 2, floored at 250ms.
  EXPECT_GE(d.hedge_timeout, sim_time::from_msec(250));
  EXPECT_GE(d.hedge_timeout, sim_time::from_msec(1600) * 0.99);

  // 8/64 = 12.5% → (3,1).
  for (int i = 0; i < 5; ++i) sched.observe_fault();
  d = sched.decide();
  EXPECT_EQ(d.connections, 3);
  EXPECT_EQ(d.parity, 1);

  // 14/64 ≈ 22% → (4,2).
  for (int i = 0; i < 6; ++i) sched.observe_fault();
  d = sched.decide();
  EXPECT_EQ(d.connections, 4);
  EXPECT_EQ(d.parity, 2);
  EXPECT_GT(sched.stats().escalations, 0u);
}

TEST(TransferScheduler, PinnedDecisionClampsToPolicyBounds) {
  traffic_meter meter;
  transfer_policy pol;
  pol.enabled = true;
  pol.pinned = true;
  pol.pin = {16, 9, sim_time::from_sec(1)};  // beyond max_connections/parity
  transfer_scheduler sched(link_config::beijing(), tcp_config{}, meter, pol,
                           shard_retry_policy{}, shard_wire_costs{}, nullptr);
  const transfer_decision d = sched.decide();
  EXPECT_EQ(d.connections, pol.max_connections);
  EXPECT_EQ(d.parity, pol.max_parity);
}

// ---------------------------------------------------------------------------
// Striped dispatch on a fault-free wire: exact metering and in-order
// delivery.
// ---------------------------------------------------------------------------

TEST(TransferScheduler, StripedSendMetersParityAsRedundancy) {
  traffic_meter meter;
  transfer_policy pol;
  pol.enabled = true;
  shard_wire_costs costs{48, 32, 0, 0};
  transfer_scheduler sched(link_config::minnesota(), tcp_config{}, meter, pol,
                           shard_retry_policy{}, costs, nullptr);

  std::vector<chunk_range> chunks;
  for (std::uint32_t i = 0; i < 12; ++i) chunks.push_back({i, 8 * KiB});
  std::vector<std::uint32_t> delivered;
  // Hedge timeout far above any exchange time: nothing is "slow", so the
  // meter arithmetic below is exact.
  const transfer_decision d{4, 2, sim_time::from_sec(60)};
  const striped_outcome out = sched.send_striped(
      sim_time::from_sec(1), chunks, d,
      [&](std::uint32_t idx, std::uint64_t, sim_time) {
        delivered.push_back(idx);
      },
      [](sim_time) {});

  EXPECT_TRUE(out.complete);
  EXPECT_GT(out.done, sim_time::from_sec(1));
  // Chunks arrive in index order within each stripe of 4.
  ASSERT_EQ(delivered.size(), 12u);
  for (std::uint32_t i = 0; i < 12; ++i) EXPECT_EQ(delivered[i], i);

  const transfer_stats& st = sched.stats();
  EXPECT_EQ(st.stripes, 3u);
  EXPECT_EQ(st.data_shards, 12u);
  EXPECT_EQ(st.parity_shards, 6u);
  EXPECT_EQ(st.shard_faults, 0u);
  EXPECT_EQ(st.hedges_fired, 0u);  // nothing was slow or faulted

  // Payload = the 12 data chunks; redundancy = the 6 parity shards (each
  // sized to the widest data shard); framing = one control/ack per shard
  // exchange.
  EXPECT_EQ(meter.by_category(traffic_category::payload), 12 * 8 * KiB);
  EXPECT_EQ(meter.by_category(traffic_category::redundancy), 6 * 8 * KiB);
  EXPECT_EQ(meter.by_category(traffic_category::resume), 18 * (48 + 32));
  EXPECT_EQ(sched.per_connection().size(), 4u);
  for (const connection_stats& cs : sched.per_connection()) {
    EXPECT_GT(cs.dispatches, 0u);
    EXPECT_EQ(cs.faults, 0u);
    EXPECT_EQ(cs.loss_estimate(), 0.0);
    EXPECT_GT(cs.rtt_estimate(), sim_time{});
  }
}

// ---------------------------------------------------------------------------
// Faulted runs: stripes fire, redundancy is metered, everything converges.
// ---------------------------------------------------------------------------

TEST(TransferScheduler, DegradedLinkStripesHedgesAndConverges) {
  experiment_env env(transfer_cfg(1.0, true, /*pinned=*/true, 4, 2));
  station& st = env.primary();

  for (int i = 0; i < 3; ++i) {
    const std::string path = "xfer/f" + std::to_string(i);
    const sim_time at =
        std::max(env.clock().now(), st.client->busy_until()) +
        sim_time::from_sec(5);
    env.clock().schedule_at(at, [&st, &env, path, at] {
      st.fs.create(path, env.gen_compressed(kFileBytes), at);
    });
    env.settle();
  }

  ASSERT_NE(st.client->transfer_sched(), nullptr);
  const transfer_stats& ts = st.client->transfer_sched()->stats();
  EXPECT_GT(ts.stripes, 0u);
  EXPECT_GT(ts.parity_shards, 0u);
  EXPECT_GT(ts.shard_faults, 0u);  // degraded(1.0) on Beijing faults plenty
  EXPECT_GT(st.aggregate_meter().by_category(traffic_category::redundancy),
            0u);

  // The striped uploads still converged and kept every invariant.
  const invariant_report report = check_all(env, st);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(env.the_cloud().open_session_count(), 0u);
  EXPECT_EQ(st.journal.committed_count(), 3u);
}

// The scheduler's connections ride fault domains 1..K; the environment's
// main (domain 0) schedule must be untouched by striping, so the serial
// fallback path stays byte-identical whether or not striping ran before it.
TEST(TransferScheduler, SchedulerUsesOwnFaultDomains) {
  experiment_env env(transfer_cfg(1.0, true, /*pinned=*/true, 4, 2));
  station& st = env.primary();
  const sim_time at = env.clock().now() + sim_time::from_sec(5);
  env.clock().schedule_at(at, [&st, &env, at] {
    st.fs.create("xfer/f", env.gen_compressed(kFileBytes), at);
  });
  env.settle();

  EXPECT_GT(st.client->transfer_sched()->stats().stripes, 0u);
  EXPECT_GE(env.faults().domain_count(), 4u);
  // Child domains injected faults of their own...
  EXPECT_GT(env.faults().injected_total_all_domains(),
            env.faults().injected_total());
}

// ---------------------------------------------------------------------------
// Mid-stripe crash: the journal's out-of-order ack mask resumes correctly.
// ---------------------------------------------------------------------------

TEST(TransferScheduler, MidStripeCrashResumesThroughJournalMask) {
  experiment_config cfg = transfer_cfg(0.0, true, /*pinned=*/true, 4, 2);
  experiment_env env(cfg);
  station& st = env.primary();

  // Kill the client at the third mid_chunk site: the first stripe has
  // partially acked, leaving holes in the journal mask.
  env.faults().force_crash(crash_site::mid_chunk, /*skip=*/2);
  st.fs.create("kill/striped", env.gen_compressed(kFileBytes),
               env.clock().now());
  env.settle();

  EXPECT_EQ(st.crashes, 1u);
  ASSERT_TRUE(env.the_cloud().file_content(0, "kill/striped").has_value());
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "kill/striped")),
            to_string(st.fs.read("kill/striped")));
  const invariant_report report = check_all(env, st);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(env.the_cloud().open_session_count(), 0u);
  EXPECT_EQ(st.total_resumes(), 1u);  // continued, not restarted
}

// ---------------------------------------------------------------------------
// Determinism: thread counts and scheduler enablement must not leak into
// unrelated results.
// ---------------------------------------------------------------------------

// The retry backoff-jitter stream is pinned: a journal-less failure run is
// bit-identical whether the scheduler is compiled in, enabled, or absent
// (without sessions there is nothing to stripe, and observation draws no
// RNG), and whether the grid runs on 1 or 4 threads.
TEST(TransferScheduler, BackoffJitterStreamUnchangedByScheduler) {
  experiment_config off{dropbox()};
  off.method = access_method::pc_client;
  off.link = link_config::beijing();
  off.faults = fault_plan::degraded(1.0);
  experiment_config on = off;
  on.transfer.enabled = true;

  const failure_run_result a = run_failure_experiment(off, 4, 128 * KiB);
  const failure_run_result b = run_failure_experiment(on, 4, 128 * KiB);
  EXPECT_EQ(a.total_traffic, b.total_traffic);
  EXPECT_EQ(a.retry_traffic, b.retry_traffic);
  EXPECT_EQ(a.completion_sec, b.completion_sec);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.requeues, b.requeues);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

// Striped cells evaluated under the parallel runner are bit-identical to a
// serial evaluation (this is also the tsan exercise for the scheduler).
TEST(TransferScheduler, ParallelGridMatchesSerial) {
  const std::vector<experiment_config> cfgs = {
      transfer_cfg(0.0, true, false, 0, 0),
      transfer_cfg(0.6, true, false, 0, 0, 4711),
      transfer_cfg(0.6, true, true, 4, 2, 4711),
      transfer_cfg(1.0, true, true, 2, 1, 9001),
  };
  auto eval = [&](unsigned threads) {
    std::vector<transfer_run_result> out(cfgs.size());
    parallel_runner pool(threads);
    pool.run_indexed(cfgs.size(), [&](std::size_t i) {
      out[i] = run_transfer_experiment(cfgs[i], 3, kFileBytes);
    });
    return out;
  };
  const std::vector<transfer_run_result> serial = eval(1);
  const std::vector<transfer_run_result> parallel = eval(4);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_TRUE(same_result(serial[i], parallel[i])) << "cell " << i;
  }
  // The faulted striped cells actually exercised the machinery.
  EXPECT_GT(serial[2].sched.stripes, 0u);
  EXPECT_GT(serial[2].redundancy_traffic, 0u);
}

}  // namespace
}  // namespace cloudsync
