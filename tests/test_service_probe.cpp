// The fingerprinting suite must recover every service's ground truth from
// traffic alone.
#include <gtest/gtest.h>

#include "core/service_probe.hpp"

namespace cloudsync {
namespace {

probed_characteristics probe(const char* name, bool with_dedup = false) {
  experiment_config cfg{*find_service(name)};
  probe_options opts;
  opts.probe_dedup = with_dedup;
  return probe_service(cfg, opts);
}

TEST(ServiceProbe, GoogleDrive) {
  const auto p = probe("Google Drive");
  EXPECT_FALSE(p.incremental_sync);
  EXPECT_FALSE(p.compresses_upload);
  EXPECT_FALSE(p.compresses_download);
  EXPECT_FALSE(p.batched_sync);
  ASSERT_TRUE(p.has_fixed_defer);
  EXPECT_NEAR(p.est_defer_sec, 4.2, 0.6);
  EXPECT_NEAR(static_cast<double>(p.per_event_overhead), 9e3, 3e3);
}

TEST(ServiceProbe, OneDrive) {
  const auto p = probe("OneDrive");
  EXPECT_FALSE(p.incremental_sync);
  EXPECT_FALSE(p.batched_sync);
  ASSERT_TRUE(p.has_fixed_defer);
  EXPECT_NEAR(p.est_defer_sec, 10.5, 1.0);
}

TEST(ServiceProbe, Dropbox) {
  const auto p = probe("Dropbox", /*with_dedup=*/true);
  EXPECT_TRUE(p.incremental_sync);
  // Paper's estimate: C ≈ 10 KB (we measure chunk + framing).
  EXPECT_GT(p.est_delta_chunk, 5 * KiB);
  EXPECT_LT(p.est_delta_chunk, 30 * KiB);
  EXPECT_TRUE(p.compresses_upload);
  EXPECT_TRUE(p.compresses_download);
  EXPECT_TRUE(p.batched_sync);
  EXPECT_FALSE(p.has_fixed_defer);
  EXPECT_TRUE(p.dedup_same_user.block_dedup);
  EXPECT_EQ(p.dedup_same_user.block_size, 4 * MiB);
  EXPECT_FALSE(p.dedup_cross_user.block_dedup);
  EXPECT_FALSE(p.dedup_cross_user.full_file_dedup);
}

TEST(ServiceProbe, Box) {
  const auto p = probe("Box");
  EXPECT_FALSE(p.incremental_sync);
  EXPECT_FALSE(p.compresses_upload);
  EXPECT_FALSE(p.batched_sync);
  EXPECT_FALSE(p.has_fixed_defer);  // throttled, but not a debounce defer
}

TEST(ServiceProbe, UbuntuOne) {
  const auto p = probe("Ubuntu One", /*with_dedup=*/true);
  EXPECT_FALSE(p.incremental_sync);
  EXPECT_TRUE(p.compresses_upload);
  EXPECT_TRUE(p.batched_sync);
  EXPECT_FALSE(p.has_fixed_defer);
  EXPECT_TRUE(p.dedup_same_user.full_file_dedup);
  EXPECT_FALSE(p.dedup_same_user.block_dedup);
  EXPECT_TRUE(p.dedup_cross_user.full_file_dedup);
}

TEST(ServiceProbe, SugarSync) {
  const auto p = probe("SugarSync");
  EXPECT_TRUE(p.incremental_sync);
  EXPECT_GT(p.est_delta_chunk, 64 * KiB);  // coarser than Dropbox
  EXPECT_FALSE(p.compresses_upload);
  ASSERT_TRUE(p.has_fixed_defer);
  EXPECT_NEAR(p.est_defer_sec, 6.0, 0.8);
}

TEST(ServiceProbe, MobileMethodChangesFingerprint) {
  experiment_config cfg{dropbox()};
  cfg.method = access_method::mobile_app;
  probe_options opts;
  opts.probe_dedup = false;
  const auto p = probe_service(cfg, opts);
  EXPECT_FALSE(p.incremental_sync);  // Fig 4(c): mobile is full-file
  EXPECT_TRUE(p.compresses_upload);  // low-level compression still detected
}

TEST(ServiceProbe, SummaryMentionsEveryChoice) {
  const auto p = probe("Google Drive");
  const std::string s = p.summary();
  EXPECT_NE(s.find("sync granularity"), std::string::npos);
  EXPECT_NE(s.find("upload compression"), std::string::npos);
  EXPECT_NE(s.find("sync deferment"), std::string::npos);
  EXPECT_NE(s.find("dedup"), std::string::npos);
}

}  // namespace
}  // namespace cloudsync
