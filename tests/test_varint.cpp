#include "compress/varint.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace cloudsync {
namespace {

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  byte_buffer buf;
  put_varint(buf, GetParam());
  std::size_t pos = 0;
  const auto decoded = get_varint(buf, pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, GetParam());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16383ull, 16384ull,
                      1ull << 32, (1ull << 56) - 1,
                      std::numeric_limits<std::uint64_t>::max()));

TEST(Varint, EncodingLengths) {
  byte_buffer buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(Varint, Sequence) {
  byte_buffer buf;
  put_varint(buf, 5);
  put_varint(buf, 300);
  put_varint(buf, 7);
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(buf, pos), 5u);
  EXPECT_EQ(get_varint(buf, pos), 300u);
  EXPECT_EQ(get_varint(buf, pos), 7u);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncatedFails) {
  byte_buffer buf;
  put_varint(buf, 1'000'000);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(buf, pos).has_value());
}

TEST(Varint, EmptyFails) {
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint({}, pos).has_value());
}

}  // namespace
}  // namespace cloudsync
