// Edge cases and less-travelled paths across modules.
#include <gtest/gtest.h>

#include "compress/lzss.hpp"
#include "core/experiment.hpp"
#include "net/http_model.hpp"
#include "util/md5.hpp"

namespace cloudsync {
namespace {

// --- hash edge vectors -------------------------------------------------------

TEST(Md5Edge, MillionAs) {
  // The classic long-message vector: one million 'a' characters.
  md5_hasher h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(h.finish().hex(), "7707d6ae4e027c70eea2a935c2296f21");
}

TEST(Md5Edge, ExactBlockMultiples) {
  // 64 and 128 bytes exercise the padding-overflow path.
  const std::string b64(64, 'x');
  const std::string b128(128, 'x');
  EXPECT_NE(md5(as_bytes(b64)), md5(as_bytes(b128)));
  // Incremental at exactly block size equals one-shot.
  md5_hasher h;
  h.update(as_bytes(b64));
  h.update(as_bytes(b64));
  EXPECT_EQ(h.finish(), md5(as_bytes(b128)));
}

// --- LZSS long-range matches --------------------------------------------------

TEST(LzssEdge, MatchAtMaximumWindowDistance) {
  // A repeated 64-byte motif separated by ~64 KB of noise: the second copy
  // sits near the encoder's maximum back-reference distance.
  rng r(1);
  byte_buffer data;
  const byte_buffer motif = random_bytes(r, 64);
  append(data, motif);
  const byte_buffer gap = random_bytes(r, 65'400);
  append(data, gap);
  append(data, motif);
  const byte_buffer frame = lzss_compress(data, {.level = 9});
  EXPECT_EQ(lzss_decompress(frame), data);
}

TEST(LzssEdge, MotifBeyondWindowIsNotMatched) {
  // Past 64 KB the dictionary can't reach back; output stays ~incompressible
  // but must still round-trip.
  rng r(2);
  byte_buffer data;
  const byte_buffer motif = random_bytes(r, 64);
  append(data, motif);
  const byte_buffer gap = random_bytes(r, 70'000);
  append(data, gap);
  append(data, motif);
  const byte_buffer frame = lzss_compress(data, {.level = 9});
  EXPECT_EQ(lzss_decompress(frame), data);
  EXPECT_GT(frame.size(), data.size() * 95 / 100);
}

// --- rsync degenerate block sizes ----------------------------------------------

TEST(RsyncEdge, BlockSizeOne) {
  rng r(3);
  const byte_buffer old_data = random_bytes(r, 300);
  byte_buffer new_data = old_data;
  new_data[150] ^= 1;
  const file_signature sig = compute_signature(old_data, 1);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
  // With 1-byte blocks only the changed byte is literal... but 1-byte weak
  // checksums collide freely, so we only require correctness, not tightness.
}

TEST(RsyncEdge, BlockLargerThanFile) {
  rng r(4);
  const byte_buffer old_data = random_bytes(r, 100);
  const file_signature sig = compute_signature(old_data, 4096);
  EXPECT_EQ(sig.blocks.size(), 1u);
  // Unchanged short file: matched as the tail block.
  const file_delta same = compute_delta(sig, old_data);
  EXPECT_EQ(same.literal_bytes(), 0u);
  // Changed short file: shipped literally.
  byte_buffer changed = old_data;
  changed[0] ^= 1;
  const file_delta diff = compute_delta(sig, changed);
  EXPECT_EQ(diff.literal_bytes(), changed.size());
  EXPECT_EQ(apply_delta(old_data, diff), changed);
}

// --- engine odds and ends -------------------------------------------------------

TEST(EngineEdge, DownloadOfUnknownPathIsNoOp) {
  experiment_env env(experiment_config{box()});
  station& st = env.primary();
  const auto snap = st.client->meter().snap();
  st.client->download("does/not/exist");
  env.settle();
  EXPECT_EQ(experiment_env::traffic_since(st, snap), 0u);
}

TEST(EngineEdge, PollWithNoChangesCostsOnlyThePoll) {
  experiment_env env(experiment_config{box()});
  station& st = env.primary();
  const auto snap = st.client->meter().snap();
  EXPECT_EQ(st.client->poll_remote_changes(), 0u);
  env.settle();
  const std::uint64_t traffic = experiment_env::traffic_since(st, snap);
  EXPECT_GT(traffic, 0u);
  EXPECT_LT(traffic, 4096u);
}

TEST(EngineEdge, EmptyFileSyncs) {
  experiment_env env(experiment_config{google_drive()});
  station& st = env.primary();
  st.fs.create("empty.txt", byte_buffer{}, env.clock().now());
  env.settle();
  const auto content = env.the_cloud().file_content(0, "empty.txt");
  ASSERT_TRUE(content.has_value());
  EXPECT_TRUE(content->empty());
}

TEST(EngineEdge, ReCreateAfterDeleteMakesNewVersionChain) {
  experiment_env env(experiment_config{box()});
  station& st = env.primary();
  st.fs.create("f", to_buffer("one"), env.clock().now());
  env.settle();
  st.fs.remove("f", env.clock().now());
  env.settle();
  st.fs.create("f", to_buffer("two"), env.clock().now());
  env.settle();
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "f")), "two");
  EXPECT_GT(env.the_cloud().manifest(0, "f")->version, 1u);
}

TEST(EngineEdge, StalenessTracksDeferment) {
  // OneDrive's 10.5 s defer must show up in the staleness statistic.
  experiment_env env(experiment_config{onedrive()});
  station& st = env.primary();
  env.clock().schedule_at(sim_time::from_sec(5), [&] {
    st.fs.create("doc", to_buffer("x"), env.clock().now());
  });
  env.settle();
  ASSERT_EQ(st.client->staleness_sec().count(), 1u);
  EXPECT_GE(st.client->staleness_sec().mean(), 10.0);
  EXPECT_LT(st.client->staleness_sec().mean(), 14.0);
}

TEST(EngineEdge, NoDeferStalenessIsTransferBound) {
  experiment_env env(experiment_config{dropbox()});
  station& st = env.primary();
  env.clock().schedule_at(sim_time::from_sec(5), [&] {
    st.fs.create("doc", to_buffer("x"), env.clock().now());
  });
  env.settle();
  ASSERT_EQ(st.client->staleness_sec().count(), 1u);
  EXPECT_LT(st.client->staleness_sec().mean(), 2.0);
}

// --- http model ---------------------------------------------------------------

TEST(HttpEdge, ZeroBodiesStillCostHeaders) {
  traffic_meter meter;
  tcp_connection conn(link_config::minnesota(), {}, meter);
  conn.exchange(sim_time{}, 1, 1);
  meter.reset();
  http_exchange(conn, {700, 450}, meter, sim_time::from_sec(1),
                traffic_category::payload, 0, 0);
  EXPECT_EQ(meter.by_category(traffic_category::payload), 0u);
  EXPECT_EQ(meter.by_category(traffic_category::notification), 1150u);
}

// --- metadata service deletion notifications ------------------------------------

TEST(MetadataEdge, SecondDeviceSeesDeletion) {
  experiment_env env(experiment_config{box()});
  station& a = env.primary();
  station& b = env.add_station(0);
  a.fs.create("shared", to_buffer("v"), env.clock().now());
  env.settle();
  b.client->poll_remote_changes();
  env.settle();

  a.fs.remove("shared", env.clock().now());
  env.settle();
  const auto notes = env.the_cloud().metadata().fetch_notifications(
      0, b.client->device());
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_TRUE(notes[0].deleted);
}

}  // namespace
}  // namespace cloudsync
