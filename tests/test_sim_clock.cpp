#include "net/sim_clock.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cloudsync {
namespace {

TEST(SimClock, RunsInTimeOrder) {
  sim_clock clock;
  std::vector<int> order;
  clock.schedule_at(sim_time::from_sec(3), [&] { order.push_back(3); });
  clock.schedule_at(sim_time::from_sec(1), [&] { order.push_back(1); });
  clock.schedule_at(sim_time::from_sec(2), [&] { order.push_back(2); });
  clock.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), sim_time::from_sec(3));
}

TEST(SimClock, FifoForSameInstant) {
  sim_clock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.schedule_at(sim_time::from_sec(1), [&order, i] { order.push_back(i); });
  }
  clock.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClock, ScheduleAfter) {
  sim_clock clock;
  clock.advance_to(sim_time::from_sec(10));
  bool fired = false;
  clock.schedule_after(sim_time::from_sec(5), [&] {
    fired = true;
  });
  clock.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(clock.now(), sim_time::from_sec(15));
}

TEST(SimClock, PastSchedulesClampToNow) {
  sim_clock clock;
  clock.advance_to(sim_time::from_sec(10));
  sim_time seen{};
  clock.schedule_at(sim_time::from_sec(1), [&] { seen = clock.now(); });
  clock.run_all();
  EXPECT_EQ(seen, sim_time::from_sec(10));
}

TEST(SimClock, Cancel) {
  sim_clock clock;
  bool fired = false;
  const event_id id = clock.schedule_at(sim_time::from_sec(1),
                                        [&] { fired = true; });
  EXPECT_TRUE(clock.cancel(id));
  EXPECT_FALSE(clock.cancel(id));  // second cancel is a no-op
  clock.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(clock.pending(), 0u);
}

TEST(SimClock, CancelUnknownIdIsFalse) {
  sim_clock clock;
  EXPECT_FALSE(clock.cancel(12345));
}

TEST(SimClock, EventsCanScheduleEvents) {
  sim_clock clock;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      clock.schedule_after(sim_time::from_sec(1), recurse);
    }
  };
  clock.schedule_at(sim_time::from_sec(1), recurse);
  clock.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(clock.now(), sim_time::from_sec(5));
}

TEST(SimClock, RunUntilStopsAtBoundary) {
  sim_clock clock;
  std::vector<int> order;
  clock.schedule_at(sim_time::from_sec(1), [&] { order.push_back(1); });
  clock.schedule_at(sim_time::from_sec(5), [&] { order.push_back(5); });
  clock.run_until(sim_time::from_sec(3));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(clock.now(), sim_time::from_sec(3));
  EXPECT_EQ(clock.pending(), 1u);
  clock.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(SimClock, RunOne) {
  sim_clock clock;
  int fired = 0;
  clock.schedule_at(sim_time::from_sec(1), [&] { ++fired; });
  clock.schedule_at(sim_time::from_sec(2), [&] { ++fired; });
  EXPECT_TRUE(clock.run_one());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(clock.run_one());
  EXPECT_FALSE(clock.run_one());
}

TEST(SimClock, CancelInsideEvent) {
  sim_clock clock;
  bool second_fired = false;
  event_id second = 0;
  clock.schedule_at(sim_time::from_sec(1), [&] { clock.cancel(second); });
  second = clock.schedule_at(sim_time::from_sec(2),
                             [&] { second_fired = true; });
  clock.run_all();
  EXPECT_FALSE(second_fired);
}

TEST(SimClock, AdvanceToNeverGoesBackwards) {
  sim_clock clock;
  clock.advance_to(sim_time::from_sec(10));
  clock.advance_to(sim_time::from_sec(5));
  EXPECT_EQ(clock.now(), sim_time::from_sec(10));
}

TEST(SimClock, PendingCount) {
  sim_clock clock;
  EXPECT_EQ(clock.pending(), 0u);
  const event_id a = clock.schedule_at(sim_time::from_sec(1), [] {});
  clock.schedule_at(sim_time::from_sec(2), [] {});
  EXPECT_EQ(clock.pending(), 2u);
  clock.cancel(a);
  EXPECT_EQ(clock.pending(), 1u);
  clock.run_all();
  EXPECT_EQ(clock.pending(), 0u);
}

}  // namespace
}  // namespace cloudsync
