// Concurrency contract of dedup_index: the scope DIRECTORY is internally
// synchronized (create/lookup/drop from any thread) while each scope's
// fingerprint_shard is externally serialized by its owner. These tests model
// the sharded sync server's usage — every thread owns a disjoint set of user
// scopes and hammers them while the directory churns underneath — and are the
// load the tsan preset is expected to keep clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dedup/dedup_index.hpp"
#include "util/bytes.hpp"

namespace cloudsync {
namespace {

fingerprint fp_of(std::uint64_t n) {
  const std::string s = "fp-" + std::to_string(n);
  return fingerprint_of(as_bytes(s));
}

TEST(DedupConcurrent, DisjointScopesFromManyThreads) {
  dedup_index idx(8);
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kScopesPerThread = 16;
  constexpr std::uint64_t kFpsPerScope = 64;

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Thread t owns scopes [t*kScopesPerThread, (t+1)*kScopesPerThread):
      // per-scope ops are serialized (single owner), directory ops race freely.
      for (std::uint32_t s = 0; s < kScopesPerThread; ++s) {
        const user_id scope = 1 + t * kScopesPerThread + s;
        for (std::uint64_t f = 0; f < kFpsPerScope; ++f) {
          const fingerprint fp = fp_of(scope * 1000 + f);
          EXPECT_FALSE(idx.contains(scope, fp));
          idx.add(scope, fp);
          idx.add(scope, fp);  // refcount 2
          EXPECT_TRUE(idx.contains(scope, fp));
          idx.remove(scope, fp);
          EXPECT_TRUE(idx.contains(scope, fp));  // still one reference
        }
        EXPECT_EQ(idx.unique_count(scope), kFpsPerScope);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(idx.total_scopes(), kThreads * kScopesPerThread);
}

TEST(DedupConcurrent, CreateTeardownRacesWithForeignScopeTraffic) {
  dedup_index idx(8);
  constexpr unsigned kChurners = 2;
  constexpr unsigned kWorkers = 2;
  constexpr int kRounds = 200;
  std::atomic<bool> stop{false};

  // Churner threads create and drop their own disposable scopes — pure
  // directory traffic (rehashes included) racing against the workers.
  std::vector<std::thread> churn;
  for (unsigned c = 0; c < kChurners; ++c) {
    churn.emplace_back([&, c] {
      const user_id base = 10'000 + c * 1'000;
      for (int r = 0; r < kRounds; ++r) {
        const user_id scope = base + (r % 97);
        idx.create_scope(scope, 4);
        idx.add(scope, fp_of(scope + r));
        EXPECT_TRUE(idx.drop_scope(scope));
        EXPECT_FALSE(idx.contains(scope, fp_of(scope + r)));
      }
    });
  }

  // Worker threads keep their long-lived scopes busy while the directory
  // churns: scope pointers must stay stable across the concurrent rehashes.
  std::vector<std::thread> workers;
  std::vector<std::uint64_t> adds(kWorkers, 0);
  for (unsigned t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      const user_id scope = 1 + t;
      idx.create_scope(scope, 64);
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const fingerprint fp = fp_of(scope * 1'000'000 + n);
        idx.add(scope, fp);
        EXPECT_TRUE(idx.contains(scope, fp));
        ++n;
      }
      adds[t] = n;
    });
  }

  for (auto& c : churn) c.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();

  for (unsigned t = 0; t < kWorkers; ++t) {
    EXPECT_EQ(idx.unique_count(1 + t), adds[t]);
  }
  // Disposable scopes all dropped; long-lived ones remain.
  EXPECT_EQ(idx.total_scopes(), kWorkers);
}

TEST(DedupConcurrent, CreateScopeIsIdempotentAndGrowsReservation) {
  dedup_index idx;
  idx.create_scope(5, 4);
  idx.add(5, fp_of(1));
  idx.create_scope(5, 4096);  // grow in place — existing entries survive
  EXPECT_TRUE(idx.contains(5, fp_of(1)));
  EXPECT_EQ(idx.unique_count(5), 1u);
}

TEST(DedupConcurrent, DropScopeReturnsFalseForUnknown) {
  dedup_index idx;
  EXPECT_FALSE(idx.drop_scope(404));
  idx.create_scope(404, 4);
  EXPECT_TRUE(idx.drop_scope(404));
  EXPECT_FALSE(idx.drop_scope(404));
}

TEST(DedupConcurrent, ConcurrentFirstTouchOfManyScopes) {
  // add() on a brand-new scope takes the exclusive directory path; many
  // threads doing first-touches concurrently must not lose creations.
  dedup_index idx(4);
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kScopes = 128;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint32_t s = t; s < kScopes; s += kThreads) {
        idx.add(1 + s, fp_of(s));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(idx.total_scopes(), kScopes);
  for (std::uint32_t s = 0; s < kScopes; ++s) {
    EXPECT_TRUE(idx.contains(1 + s, fp_of(s)));
  }
}

}  // namespace
}  // namespace cloudsync
