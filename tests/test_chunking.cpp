#include <gtest/gtest.h>

#include "chunking/cdc.hpp"
#include "chunking/fixed_chunker.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

TEST(FixedChunker, ExactMultiple) {
  rng r(1);
  const byte_buffer data = random_bytes(r, 4096);
  const auto chunks = fixed_chunks(data, 1024);
  ASSERT_EQ(chunks.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunks[i].offset, i * 1024);
    EXPECT_EQ(chunks[i].size, 1024u);
  }
}

TEST(FixedChunker, ShortTail) {
  rng r(2);
  const byte_buffer data = random_bytes(r, 4097);
  const auto chunks = fixed_chunks(data, 1024);
  ASSERT_EQ(chunks.size(), 5u);
  EXPECT_EQ(chunks.back().size, 1u);
}

TEST(FixedChunker, Empty) {
  EXPECT_TRUE(fixed_chunks({}, 1024).empty());
}

TEST(FixedChunker, SingleSmallFile) {
  rng r(3);
  const byte_buffer data = random_bytes(r, 10);
  const auto chunks = fixed_chunks(data, 1024);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size, 10u);
}

class FixedChunkerCoverage : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FixedChunkerCoverage, ChunksPartitionTheFile) {
  rng r(4);
  const byte_buffer data = random_bytes(r, 10'000);
  const auto chunks = fixed_chunks(data, GetParam());
  std::size_t covered = 0;
  std::size_t expected_offset = 0;
  for (const chunk_ref& c : chunks) {
    EXPECT_EQ(c.offset, expected_offset);
    expected_offset += c.size;
    covered += c.size;
    EXPECT_EQ(slice(data, c).size(), c.size);
  }
  EXPECT_EQ(covered, data.size());
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, FixedChunkerCoverage,
                         ::testing::Values(1, 7, 128, 1000, 4096, 10'000,
                                           20'000));

TEST(Cdc, ChunksPartitionTheFile) {
  rng r(5);
  const byte_buffer data = random_bytes(r, 300'000);
  const auto chunks = content_defined_chunks(data);
  std::size_t expected_offset = 0;
  for (const chunk_ref& c : chunks) {
    EXPECT_EQ(c.offset, expected_offset);
    expected_offset += c.size;
  }
  EXPECT_EQ(expected_offset, data.size());
}

TEST(Cdc, RespectsBounds) {
  rng r(6);
  const byte_buffer data = random_bytes(r, 500'000);
  const cdc_params p{1024, 4096, 16 * 1024};
  const auto chunks = content_defined_chunks(data, p);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // tail may be short
    EXPECT_GE(chunks[i].size, p.min_size);
    EXPECT_LE(chunks[i].size, p.max_size);
  }
  // Average should be loosely near the target.
  const double avg =
      static_cast<double>(data.size()) / static_cast<double>(chunks.size());
  EXPECT_GT(avg, 2048.0);
  EXPECT_LT(avg, 12'000.0);
}

TEST(Cdc, ShiftInvariance) {
  // Insert bytes at the front; most boundaries (by content) must survive.
  rng r(7);
  const byte_buffer data = random_bytes(r, 200'000);
  byte_buffer shifted = random_bytes(r, 37);
  append(shifted, data);

  auto ids = [](byte_view content, const std::vector<chunk_ref>& chunks) {
    std::vector<std::uint64_t> out;
    for (const chunk_ref& c : chunks) {
      std::uint64_t h = 1469598103934665603ull;
      for (std::uint8_t b : slice(content, c)) {
        h = (h ^ b) * 1099511628211ull;
      }
      out.push_back(h);
    }
    return out;
  };

  const auto a = content_defined_chunks(data);
  const auto b = content_defined_chunks(shifted);
  const auto ia = ids(data, a);
  const auto ib = ids(shifted, b);

  std::size_t common = 0;
  for (std::uint64_t h : ia) {
    for (std::uint64_t g : ib) {
      if (h == g) {
        ++common;
        break;
      }
    }
  }
  // The vast majority of content-defined chunks survive the shift; a fixed
  // chunker would lose all of them.
  EXPECT_GT(common * 10, ia.size() * 8);
}

TEST(Cdc, EmptyAndTiny) {
  EXPECT_TRUE(content_defined_chunks({}).empty());
  rng r(8);
  const byte_buffer tiny = random_bytes(r, 100);
  const auto chunks = content_defined_chunks(tiny);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size, 100u);
}

TEST(Cdc, Deterministic) {
  rng r(9);
  const byte_buffer data = random_bytes(r, 100'000);
  const auto a = content_defined_chunks(data);
  const auto b = content_defined_chunks(data);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

}  // namespace
}  // namespace cloudsync
