// Cross-module property tests: invariants that must hold for ANY input,
// exercised over parameter grids and seeded random cases.
#include <gtest/gtest.h>

#include "chunking/rsync.hpp"
#include "client/defer_policy.hpp"
#include "compress/lzss.hpp"
#include "dedup/dedup_engine.hpp"
#include "net/tcp_model.hpp"
#include "storage/chunk_backend.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace cloudsync {
namespace {

// --- LZSS: decompress(compress(x)) == x for any compressibility ------------

struct payload_case {
  std::size_t size;
  double ratio;
};

class LzssPayloadSweep : public ::testing::TestWithParam<payload_case> {};

TEST_P(LzssPayloadSweep, RoundTripsEveryPayloadShape) {
  rng r(GetParam().size ^ 0xbeef);
  const byte_buffer data =
      synthetic_payload(r, GetParam().size, GetParam().ratio);
  for (int level : {1, 5, 9}) {
    EXPECT_EQ(lzss_decompress(lzss_compress(data, {.level = level})), data)
        << "level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LzssPayloadSweep,
    ::testing::Values(payload_case{100, 1.0}, payload_case{100, 3.0},
                      payload_case{4096, 1.0}, payload_case{4096, 2.0},
                      payload_case{65536, 1.5}, payload_case{65536, 5.0},
                      payload_case{1 << 20, 1.2}, payload_case{1 << 20, 8.0}));

TEST(LzssProperty, NeverExpandsBeyondFrameOverhead) {
  rng r(7);
  for (std::size_t n : {0u, 1u, 100u, 5000u, 100'000u}) {
    const byte_buffer noise = random_bytes(r, n);
    EXPECT_LE(lzss_compress(noise, {.level = 9}).size(), n + 20);
  }
}

// --- rsync + chunk backend: two independent reconstructions agree ----------

class DeltaEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaEquivalence, PatchAndChunkStoreAgree) {
  rng r(GetParam());
  const std::size_t block = 1u << (10 + GetParam() % 3);  // 1K/2K/4K
  byte_buffer old_data = random_bytes(r, 30'000 + r.uniform(40'000));

  byte_buffer new_data = old_data;
  for (int edit = 0; edit < 4; ++edit) {
    const std::size_t pos = r.uniform(new_data.size());
    if (r.chance(0.5)) {
      new_data[pos] ^= 0x7f;
    } else {
      const byte_buffer ins = random_bytes(r, r.uniform(2000));
      new_data.insert(new_data.begin() + static_cast<std::ptrdiff_t>(pos),
                      ins.begin(), ins.end());
    }
  }

  const file_signature sig = compute_signature(old_data, block);
  const file_delta delta = compute_delta(sig, new_data);

  // Reconstruction 1: direct patch.
  EXPECT_EQ(apply_delta(old_data, delta), new_data);

  // Reconstruction 2: through the chunk store.
  object_store store;
  chunk_backend backend(store, block);
  backend.put_full("old", old_data);
  backend.apply_delta("old", "new", delta);
  EXPECT_EQ(backend.materialize("new"), new_data);

  // Reconstruction 3: after a wire round trip.
  EXPECT_EQ(apply_delta(old_data, parse_delta(serialize_delta(delta))),
            new_data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(RsyncProperty, DeltaNeverLargerThanFilePlusFraming) {
  rng r(42);
  for (int i = 0; i < 8; ++i) {
    const byte_buffer old_data = random_bytes(r, 10'000);
    const byte_buffer new_data = random_bytes(r, 10'000);
    const file_delta delta =
        compute_delta(compute_signature(old_data, 1024), new_data);
    EXPECT_LE(serialize_delta(delta).size(), new_data.size() + 64);
  }
}

// --- dedup: byte conservation across granularities --------------------------

class DedupConservation : public ::testing::TestWithParam<int> {};

TEST_P(DedupConservation, DuplicatePlusNewEqualsTotal) {
  rng r(100 + GetParam());
  dedup_policy policies[4];
  policies[0] = dedup_policy::disabled();
  policies[1] = {dedup_granularity::full_file, 4 * MiB, false, {}};
  policies[2] = {dedup_granularity::fixed_block, 4096, false, {}};
  policies[3].granularity = dedup_granularity::content_defined;
  policies[3].cdc = {512, 2048, 8192};

  const byte_buffer base = random_bytes(r, 1 + r.uniform(100'000));
  byte_buffer probe = base;
  if (r.chance(0.5)) probe[r.uniform(probe.size())] ^= 1;

  for (const dedup_policy& policy : policies) {
    dedup_engine eng(policy);
    eng.commit(1, base);
    const dedup_result res = eng.analyze(1, probe);
    EXPECT_EQ(res.duplicate_bytes + res.new_bytes, probe.size());
    std::uint64_t chunk_sum = 0;
    for (const chunk_ref& c : res.new_chunks) chunk_sum += c.size;
    EXPECT_EQ(chunk_sum, res.new_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DedupConservation, ::testing::Range(0, 10));

// --- TCP model monotonicity ---------------------------------------------------

TEST(TcpProperty, DurationMonotoneInBytes) {
  const tcp_config cfg;
  sim_time prev{};
  for (std::uint64_t bytes = 1024; bytes <= 64 * MiB; bytes *= 4) {
    const transfer_cost c = one_way_cost(bytes, mbps_to_bytes_per_sec(10),
                                         sim_time::from_msec(80), cfg, 10);
    EXPECT_GE(c.duration, prev) << bytes;
    prev = c.duration;
  }
}

TEST(TcpProperty, WireBytesMonotoneInAppBytes) {
  const tcp_config cfg;
  std::uint64_t prev = 0;
  for (std::uint64_t bytes = 1; bytes <= 1 * MiB; bytes *= 8) {
    const transfer_cost c = one_way_cost(bytes, 1e6, sim_time::from_msec(50),
                                         cfg, 10);
    EXPECT_GT(c.fwd_wire, prev);
    EXPECT_GE(c.fwd_wire, bytes);
    prev = c.fwd_wire;
  }
}

// --- defer policies never fire in the past -----------------------------------

TEST(DeferProperty, FireTimeNeverBeforeUpdate) {
  rng r(55);
  no_defer none;
  fixed_defer fixed(sim_time::from_sec(5));
  adaptive_defer asd;
  byte_counter_defer uds;
  defer_policy* policies[] = {&none, &fixed, &asd, &uds};

  sim_time t{};
  for (int i = 0; i < 200; ++i) {
    t += sim_time::from_sec(r.uniform_real() * 30.0);
    const std::uint64_t pending = r.uniform(1'000'000);
    for (defer_policy* p : policies) {
      EXPECT_GE(p->next_fire(t, pending), t) << p->name();
    }
  }
}

// --- CDF self-consistency -----------------------------------------------------

TEST(CdfProperty, AtOfQuantileCoversQ) {
  rng r(66);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(r.lognormal(5, 2));
  empirical_cdf cdf(std::move(v));
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_GE(cdf.at(cdf.quantile(q)), q - 0.01);
  }
}

// --- signature wire size formula ----------------------------------------------

TEST(RsyncProperty, SignatureWireSizeTracksBlockCount) {
  rng r(77);
  for (std::size_t size : {0u, 1000u, 10'240u, 100'000u}) {
    const byte_buffer data = random_bytes(r, size);
    const file_signature sig = compute_signature(data, 1024);
    EXPECT_EQ(sig.wire_size(), 16 + sig.blocks.size() * 20);
    EXPECT_EQ(sig.blocks.size(), (size + 1023) / 1024);
  }
}

}  // namespace
}  // namespace cloudsync
