#include "util/text_table.hpp"

#include <gtest/gtest.h>

namespace cloudsync {
namespace {

TEST(TextTable, AlignsColumns) {
  text_table t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TextTable, RaggedRowsPadded) {
  text_table t;
  t.header({"a", "b", "c"});
  t.row({"1"});
  EXPECT_NO_THROW(t.str());
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, HeaderResets) {
  text_table t;
  t.header({"x"});
  t.row({"1"});
  t.header({"y"});
  EXPECT_EQ(t.rows(), 0u);
}

TEST(TextTable, NoHeader) {
  text_table t;
  t.row({"only", "rows"});
  const std::string out = t.str();
  EXPECT_EQ(out, "only  rows\n");
}

TEST(Strfmt, Formats) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
}

}  // namespace
}  // namespace cloudsync
