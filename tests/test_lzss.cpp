// LZSS compressor: round-trip properties, ratio expectations, frame
// robustness against corruption.
#include <gtest/gtest.h>

#include "compress/compressor.hpp"
#include "compress/lzss.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

class LzssLevels : public ::testing::TestWithParam<int> {};

TEST_P(LzssLevels, RoundTripText) {
  rng r(1);
  const byte_buffer original = random_text(r, 50'000);
  const byte_buffer frame =
      lzss_compress(original, {.level = GetParam()});
  EXPECT_EQ(lzss_decompress(frame), original);
}

TEST_P(LzssLevels, RoundTripRandom) {
  rng r(2);
  const byte_buffer original = random_bytes(r, 20'000);
  const byte_buffer frame =
      lzss_compress(original, {.level = GetParam()});
  EXPECT_EQ(lzss_decompress(frame), original);
  // Random data must not expand beyond the stored-frame overhead.
  EXPECT_LE(frame.size(), original.size() + 16);
}

TEST_P(LzssLevels, RoundTripRepetitive) {
  byte_buffer original;
  for (int i = 0; i < 5000; ++i) original.push_back("abcab"[i % 5]);
  const byte_buffer frame =
      lzss_compress(original, {.level = GetParam()});
  EXPECT_EQ(lzss_decompress(frame), original);
  if (GetParam() >= 1) {
    EXPECT_LT(frame.size(), original.size() / 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, LzssLevels,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9));

TEST(Lzss, EmptyInput) {
  const byte_buffer frame = lzss_compress({});
  EXPECT_TRUE(lzss_decompress(frame).empty());
}

TEST(Lzss, TinyInputs) {
  for (std::size_t n : {1, 2, 3, 4, 5, 8}) {
    rng r(n);
    const byte_buffer original = random_bytes(r, n);
    EXPECT_EQ(lzss_decompress(lzss_compress(original)), original) << n;
  }
}

TEST(Lzss, HigherLevelCompressesTextAtLeastAsWell) {
  rng r(3);
  const byte_buffer text = random_text(r, 200'000);
  const std::size_t low = lzss_compress(text, {.level = 1}).size();
  const std::size_t high = lzss_compress(text, {.level = 9}).size();
  EXPECT_LE(high, low);
  // English-word text should compress well at high level (~2x or better).
  EXPECT_LT(high, text.size() * 6 / 10);
}

TEST(Lzss, TextCompressionRatioMatchesPaperExpectation) {
  // The paper's 10 MB random-English text compressed to ~4.5 MB with WinZip;
  // our LZSS at level 9 should land in the same regime (ratio >= 2).
  rng r(4);
  const byte_buffer text = random_text(r, 1'000'000);
  const std::size_t c = lzss_compress(text, {.level = 9}).size();
  EXPECT_LT(c, text.size() / 2);
}

TEST(Lzss, OverlappingMatchRle) {
  // A run of a single byte exercises distance < length copies.
  byte_buffer original(10'000, std::uint8_t{'x'});
  const byte_buffer frame = lzss_compress(original, {.level = 5});
  EXPECT_LT(frame.size(), 200u);
  EXPECT_EQ(lzss_decompress(frame), original);
}

TEST(Lzss, CorruptMagicThrows) {
  byte_buffer frame = lzss_compress(to_buffer("hello world hello world"));
  frame[0] ^= 0xff;
  EXPECT_THROW(lzss_decompress(frame), std::runtime_error);
}

TEST(Lzss, CorruptBodyThrowsCrc) {
  rng r(5);
  byte_buffer frame = lzss_compress(random_text(r, 5'000), {.level = 6});
  frame[frame.size() / 2] ^= 0x01;
  EXPECT_THROW(lzss_decompress(frame), std::runtime_error);
}

TEST(Lzss, TruncatedFrameThrows) {
  rng r(6);
  byte_buffer frame = lzss_compress(random_text(r, 5'000), {.level = 6});
  frame.resize(frame.size() / 2);
  EXPECT_THROW(lzss_decompress(frame), std::runtime_error);
}

TEST(Lzss, GarbageThrows) {
  EXPECT_THROW(lzss_decompress(to_buffer("not a frame at all")),
               std::runtime_error);
  EXPECT_THROW(lzss_decompress({}), std::runtime_error);
}

TEST(EstimateCompressionRatio, DiscriminatesContent) {
  rng r(7);
  const byte_buffer text = random_text(r, 300'000);
  const byte_buffer noise = random_bytes(r, 300'000);
  EXPECT_GT(estimate_compression_ratio(text), 1.3);
  EXPECT_LT(estimate_compression_ratio(noise), 1.05);
}

TEST(EstimateCompressionRatio, EmptyIsOne) {
  EXPECT_DOUBLE_EQ(estimate_compression_ratio({}), 1.0);
}

TEST(CompressorInterface, IdentityPassesThrough) {
  identity_compressor c;
  const byte_buffer data = to_buffer("payload");
  EXPECT_EQ(c.compress(data), data);
  EXPECT_EQ(c.decompress(data), data);
  EXPECT_EQ(c.name(), "identity");
}

TEST(CompressorInterface, FactoryLevels) {
  EXPECT_EQ(make_compressor(0)->name(), "identity");
  EXPECT_EQ(make_compressor(-3)->name(), "identity");
  EXPECT_EQ(make_compressor(6)->name(), "lzss-6");
  rng r(8);
  const byte_buffer text = random_text(r, 10'000);
  const auto c = make_compressor(6);
  EXPECT_EQ(c->decompress(c->compress(text)), text);
}

TEST(SampleWindows, CoverSmallInputWhole) {
  const auto w = compression_sample_windows(1000, 16 * 1024);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].offset, 0u);
  EXPECT_EQ(w[0].length, 1000u);
}

TEST(SampleWindows, LargeInputGetsEightSortedDisjointWindows) {
  const std::size_t size = 5'000'000;
  const auto w = compression_sample_windows(size, 16 * 1024);
  ASSERT_EQ(w.size(), 8u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i].length, 16 * 1024 / 8) << i;
    EXPECT_LE(w[i].offset + w[i].length, size) << i;
    if (i > 0) EXPECT_GE(w[i].offset, w[i - 1].offset + w[i - 1].length) << i;
  }
  EXPECT_EQ(w.back().offset + w.back().length, size);
}

TEST(SampleWindows, RatioOfWindowsMatchesWholeBufferEstimate) {
  rng r(21);
  for (const std::size_t size : {900u, 70'000u, 500'000u}) {
    const byte_buffer data = random_text(r, size);
    const auto plan = compression_sample_windows(data.size(), 16 * 1024);
    std::vector<byte_view> views;
    for (const sample_window& w : plan) {
      views.push_back(byte_view(data).subspan(w.offset, w.length));
    }
    EXPECT_DOUBLE_EQ(estimate_ratio_of_windows(views),
                     estimate_compression_ratio(data, 16 * 1024))
        << size;
  }
}

/// The sizer's whole contract: finish() == lzss_compress(flat).size(),
/// across content shapes, levels, feed-window sizes, and the stored-frame
/// fallback boundary.
class StreamSizer : public ::testing::TestWithParam<int> {};

TEST_P(StreamSizer, MatchesCompressorAcrossShapesAndWindows) {
  const int level = GetParam();
  rng r(100 + level);
  const struct {
    const char* name;
    byte_buffer data;
  } shapes[] = {
      {"empty", {}},
      {"tiny", random_bytes(r, 3)},
      {"text", random_text(r, 200'000)},
      {"noise", random_bytes(r, 150'000)},
      {"rle", byte_buffer(100'000, std::uint8_t{'x'})},
      {"mixed", synthetic_payload(r, 300'000, 1.8)},
  };
  for (const auto& s : shapes) {
    const std::size_t expect = lzss_compress(s.data, {.level = level}).size();
    // Feed windows chosen to cross the sizer's 32 KiB staging and 128 KiB
    // ring boundaries at awkward offsets.
    for (const std::size_t win : {1u << 20, 65'537u, 4096u, 977u}) {
      lzss_stream_sizer sizer(s.data.size(), {.level = level});
      for (std::size_t off = 0; off < s.data.size(); off += win) {
        sizer.feed(byte_view(s.data).subspan(
            off, std::min(win, s.data.size() - off)));
      }
      EXPECT_EQ(sizer.finish(), expect) << s.name << " win=" << win;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, StreamSizer,
                         ::testing::Values(0, 1, 3, 6, 9));

TEST(StreamSizerErrors, FinishValidatesFedBytes) {
  lzss_stream_sizer sizer(10, {.level = 6});
  sizer.feed(byte_buffer(5, std::uint8_t{'a'}));
  EXPECT_THROW(sizer.finish(), std::logic_error);  // 5 of 10 bytes fed
}

TEST(SyntheticPayloadCompression, TracksTargetRatio) {
  rng r(9);
  const byte_buffer p = synthetic_payload(r, 200'000, 2.0);
  const double ratio = static_cast<double>(p.size()) /
                       static_cast<double>(lzss_compress(p, {.level = 6}).size());
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.0);
}

}  // namespace
}  // namespace cloudsync
