// Unit tests for the client cache tier's building blocks: the pluggable
// eviction policies (differential against in-test reference models) and the
// block_cache itself (pinning, dirty protection, write-back bookkeeping,
// rehydration reads). Engine integration lives in test_cache_tier.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cache/block_cache.hpp"
#include "cache/eviction_policy.hpp"
#include "store/content_ref.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cloudsync {
namespace {

content_ref bytes_of(const std::string& s) {
  return content_ref::from_buffer(std::vector<std::uint8_t>(s.begin(),
                                                            s.end()));
}

content_ref rand_content(rng& r, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(r.uniform(256));
  return content_ref::from_buffer(std::move(v));
}

// ---------------------------------------------------------------------------
// Eviction policies.

TEST(BlockCachePolicy, LruEvictsLeastRecentlyUsed) {
  lru_policy p;
  p.set_capacity(3);
  p.on_insert(1);
  p.on_insert(2);
  p.on_insert(3);
  p.on_access(1);  // order now (MRU->LRU): 1, 3, 2
  cache_block_id victim = 0;
  ASSERT_TRUE(p.pick_victim([](cache_block_id) { return true; }, &victim));
  EXPECT_EQ(victim, 2u);
  ASSERT_TRUE(p.pick_victim([](cache_block_id) { return true; }, &victim));
  EXPECT_EQ(victim, 3u);
  ASSERT_TRUE(p.pick_victim([](cache_block_id) { return true; }, &victim));
  EXPECT_EQ(victim, 1u);
  EXPECT_FALSE(p.pick_victim([](cache_block_id) { return true; }, &victim));
}

TEST(BlockCachePolicy, LruSkipsNonEvictable) {
  lru_policy p;
  p.on_insert(1);
  p.on_insert(2);
  p.on_insert(3);  // LRU order: 1 oldest
  cache_block_id victim = 0;
  ASSERT_TRUE(p.pick_victim(
      [](cache_block_id id) { return id != 1 && id != 2; }, &victim));
  EXPECT_EQ(victim, 3u);
  // Only protected blocks remain.
  EXPECT_FALSE(p.pick_victim([](cache_block_id id) { return id > 3; },
                             &victim));
  // The failed pick left 1 and 2 tracked: unprotecting works.
  ASSERT_TRUE(p.pick_victim([](cache_block_id) { return true; }, &victim));
  EXPECT_EQ(victim, 1u);
}

/// Reference LRU: a plain deque scanned linearly. The real policy must pick
/// byte-identical victims over a long random operation sequence.
TEST(BlockCachePolicy, LruMatchesReferenceModel) {
  lru_policy p;
  p.set_capacity(16);
  std::deque<cache_block_id> ref;  // front = LRU, back = MRU
  rng r(20260808);
  for (int step = 0; step < 4000; ++step) {
    const cache_block_id id = 1 + r.uniform(32);
    const bool resident = std::find(ref.begin(), ref.end(), id) != ref.end();
    switch (r.uniform(4)) {
      case 0:  // insert (fresh ids only — the cache never double-inserts)
        if (!resident) {
          p.on_insert(id);
          ref.push_back(id);
        }
        break;
      case 1:  // access
        if (resident) {
          p.on_access(id);
          ref.erase(std::find(ref.begin(), ref.end(), id));
          ref.push_back(id);
        }
        break;
      case 2:  // erase
        if (resident) {
          p.on_erase(id);
          ref.erase(std::find(ref.begin(), ref.end(), id));
        }
        break;
      default: {  // evict, with a deterministic protection predicate
        auto evictable = [](cache_block_id b) { return b % 5 != 0; };
        cache_block_id got = 0;
        const bool ok = p.pick_victim(evictable, &got);
        auto want = std::find_if(ref.begin(), ref.end(), evictable);
        if (want == ref.end()) {
          EXPECT_FALSE(ok) << "step " << step;
        } else {
          ASSERT_TRUE(ok) << "step " << step;
          EXPECT_EQ(got, *want) << "step " << step;
          ref.erase(want);
        }
        break;
      }
    }
  }
}

TEST(BlockCachePolicy, ArcGhostHitGrowsRecencyTarget) {
  arc_policy p;
  p.set_capacity(2);
  p.on_insert(1);
  p.on_insert(2);
  cache_block_id victim = 0;
  // Evict 1 (T1 LRU) -> it becomes a B1 ghost.
  ASSERT_TRUE(p.pick_victim([](cache_block_id) { return true; }, &victim));
  EXPECT_EQ(victim, 1u);
  EXPECT_EQ(p.p(), 0u);
  // Re-inserting the ghost is a B1 hit: p grows, 1 lands in T2.
  p.on_insert(1);
  EXPECT_GT(p.p(), 0u);
}

TEST(BlockCachePolicy, ArcProtectsFrequentBlocksFromScan) {
  // Hot blocks (accessed twice -> T2) survive a one-pass scan that would
  // flush a pure LRU.
  arc_policy p;
  p.set_capacity(4);
  const cache_block_id hot[] = {1, 2};
  for (const cache_block_id id : hot) p.on_insert(id);
  for (const cache_block_id id : hot) p.on_access(id);  // promote to T2
  std::vector<cache_block_id> evicted;
  for (cache_block_id s = 100; s < 108; ++s) {  // scan of cold blocks
    p.on_insert(s);
    cache_block_id victim = 0;
    ASSERT_TRUE(p.pick_victim([](cache_block_id) { return true; }, &victim));
    evicted.push_back(victim);
  }
  for (const cache_block_id id : hot) {
    EXPECT_EQ(std::count(evicted.begin(), evicted.end(), id), 0)
        << "hot block " << id << " fell to the scan";
  }
}

TEST(BlockCachePolicy, ArcBeatsLruOnLoopingScan) {
  // The policy-level version of the bench's scan gate: a reused hot set
  // plus a looping scan larger than capacity. Residency is simulated by
  // the policies' own victim choices.
  constexpr std::size_t kCapacity = 8;
  constexpr cache_block_id kHot = 4, kCold = 24;
  auto run = [&](cache_eviction which) {
    auto p = make_eviction_policy(which);
    p->set_capacity(kCapacity);
    std::map<cache_block_id, bool> resident;
    std::size_t live = 0, hits = 0, accesses = 0;
    auto touch = [&](cache_block_id id) {
      ++accesses;
      if (resident[id]) {
        ++hits;
        p->on_access(id);
        return;
      }
      if (live == kCapacity) {
        cache_block_id victim = 0;
        ASSERT_TRUE(
            p->pick_victim([](cache_block_id) { return true; }, &victim));
        resident[victim] = false;
        --live;
      }
      p->on_insert(id);
      resident[id] = true;
      ++live;
    };
    for (int round = 0; round < 6; ++round) {
      for (int rep = 0; rep < 3; ++rep) {
        for (cache_block_id h = 0; h < kHot; ++h) touch(h);
      }
      for (cache_block_id c = 0; c < kCold; ++c) touch(1000 + c);
    }
    return static_cast<double>(hits) / static_cast<double>(accesses);
  };
  const double lru_ratio = run(cache_eviction::lru);
  const double arc_ratio = run(cache_eviction::arc);
  EXPECT_GE(arc_ratio, lru_ratio);
  EXPECT_GT(arc_ratio, 0.0);
}

TEST(BlockCachePolicy, ArcGhostsAreBounded) {
  // |T1|+|B1| <= c and total tracked <= 2c: a long one-directional scan
  // must not grow history without bound. Indirectly observable: ancient
  // ghosts stop influencing p — re-inserting a long-evicted id acts like a fresh
  // insert (p unchanged).
  arc_policy p;
  p.set_capacity(4);
  cache_block_id victim = 0;
  for (cache_block_id id = 0; id < 100; ++id) {
    p.on_insert(id);
    if (id >= 4) {
      ASSERT_TRUE(
          p.pick_victim([](cache_block_id) { return true; }, &victim));
    }
  }
  const std::size_t p_before = p.p();
  p.on_insert(0);  // evicted ~96 inserts ago: its ghost must be long gone
  EXPECT_EQ(p.p(), p_before);
}

// ---------------------------------------------------------------------------
// block_cache.

cache_config small_cfg(std::uint64_t capacity,
                       cache_eviction policy = cache_eviction::lru) {
  cache_config c;
  c.capacity_bytes = capacity;
  c.block_bytes = 4;
  c.policy = policy;
  return c;
}

TEST(BlockCache, InstallMakesAllBlocksResident) {
  block_cache bc(small_cfg(0));
  bc.install("a", bytes_of("0123456789"));  // 3 blocks: 4+4+2
  EXPECT_TRUE(bc.tracks("a"));
  EXPECT_EQ(bc.resident_blocks(), 3u);
  EXPECT_EQ(bc.resident_bytes(), 10u);
  EXPECT_TRUE(bc.probe_resident("a"));
  EXPECT_EQ(bc.stats().hits, 3u);
  EXPECT_EQ(bc.stats().misses, 0u);
}

TEST(BlockCache, ReadAssemblesResidentBlocksWithoutFetching) {
  block_cache bc(small_cfg(0));
  const content_ref content = bytes_of("abcdefghij");
  bc.install("a", content);
  bool fetched = false;
  const auto got = bc.read("a", [&](std::uint32_t, std::uint32_t) {
    fetched = true;
    return content_ref();
  });
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->equal(content));
  EXPECT_FALSE(fetched);
  EXPECT_FALSE(bc.read("missing", [](std::uint32_t, std::uint32_t) {
                   return content_ref();
                 }).has_value());
}

TEST(BlockCache, EvictionRespectsCapacity) {
  block_cache bc(small_cfg(8));  // room for 2 blocks of 4
  bc.install("a", bytes_of("aaaa"));
  bc.install("b", bytes_of("bbbb"));
  bc.install("c", bytes_of("cccc"));
  EXPECT_LE(bc.resident_bytes(), 8u);
  EXPECT_FALSE(bc.over_capacity());
  EXPECT_EQ(bc.stats().evictions, 1u);
  EXPECT_EQ(bc.tracked_paths(), 3u);  // tracking survives eviction
}

TEST(BlockCache, PinnedPathsAreNeverEvicted) {
  block_cache bc(small_cfg(8));
  bc.install("hot", bytes_of("hhhh"));
  bc.pin("hot");
  for (int i = 0; i < 6; ++i) {
    bc.install("cold" + std::to_string(i), bytes_of("cccc"));
  }
  EXPECT_TRUE(bc.pinned("hot"));
  EXPECT_EQ(bc.pinned_paths(), 1u);
  EXPECT_TRUE(bc.probe_resident("hot")) << "pinned path was evicted";
  bc.unpin("hot");
  EXPECT_FALSE(bc.pinned("hot"));
  bc.install("cold6", bytes_of("cccc"));
  bc.install("cold7", bytes_of("cccc"));
  // With the pin gone the old hot block is the LRU victim.
  EXPECT_FALSE(bc.probe_resident("hot"));
}

TEST(BlockCache, AllPinnedOvershootsInsteadOfEvicting) {
  block_cache bc(small_cfg(4));
  bc.pin("a");  // pin-before-sync: entry exists before any bytes arrive
  bc.install("a", bytes_of("aaaa"));
  bc.pin("b");
  bc.install("b", bytes_of("bbbb"));
  // 8 resident bytes against a 4-byte budget, but nothing evictable.
  EXPECT_TRUE(bc.over_capacity());
  EXPECT_EQ(bc.stats().evictions, 0u);
  EXPECT_GT(bc.stats().eviction_stalls, 0u);
}

TEST(BlockCache, DirtyBlocksAreNeverEvicted) {
  cache_config cfg = small_cfg(4);
  cfg.write_mode = cache_write_mode::write_back;
  block_cache bc(cfg);
  bc.install("a", bytes_of("aaaa"));
  EXPECT_EQ(bc.note_local_write("a", bytes_of("AAAA")), 1u);
  EXPECT_EQ(bc.dirty_blocks(), 1u);
  bc.install("b", bytes_of("bbbb"));
  bc.install("c", bytes_of("cccc"));
  // The dirty block is the only copy of unsynced data: still resident.
  const auto got = bc.read("a", [](std::uint32_t, std::uint32_t) -> content_ref {
    ADD_FAILURE() << "dirty block was evicted and refetched";
    return content_ref();
  });
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->equal(bytes_of("AAAA")));
}

TEST(BlockCache, WriteBackCoalescingCounters) {
  cache_config cfg = small_cfg(0);
  cfg.write_mode = cache_write_mode::write_back;
  block_cache bc(cfg);
  bc.install("a", bytes_of("aaaabbbb"));
  EXPECT_EQ(bc.note_local_write("a", bytes_of("Xaaabbbb")), 1u);
  EXPECT_EQ(bc.stats().dirty_marked, 1u);
  // Second write to the same block: absorbed, not re-marked.
  EXPECT_EQ(bc.note_local_write("a", bytes_of("XYaabbbb")), 0u);
  EXPECT_EQ(bc.stats().dirty_marked, 1u);
  EXPECT_EQ(bc.stats().dirty_coalesced, 1u);
  // Touching the second block dirties it independently.
  EXPECT_EQ(bc.note_local_write("a", bytes_of("XYaabbbZ")), 1u);
  EXPECT_EQ(bc.dirty_blocks(), 2u);
  EXPECT_EQ(bc.dirty_paths(), 1u);
  // Install of the synced version cleans everything and counts a flush.
  bc.install("a", bytes_of("XYaabbbZ"));
  EXPECT_EQ(bc.dirty_blocks(), 0u);
  EXPECT_EQ(bc.stats().flushes, 1u);
}

TEST(BlockCache, ReadRehydratesAbsentRuns) {
  block_cache bc(small_cfg(0));
  const content_ref content = bytes_of("0123456789abcdef");  // 4 blocks
  bc.install("a", content);
  EXPECT_EQ(bc.drop_clean_blocks(), 4u);
  EXPECT_EQ(bc.resident_blocks(), 0u);
  EXPECT_TRUE(bc.tracks("a"));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> fetches;
  const auto got = bc.read("a", [&](std::uint32_t first, std::uint32_t n) {
    fetches.push_back({first, n});
    return content.substr(first * 4, n * 4);
  });
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->equal(content));
  // One contiguous absent run -> one ranged fetch.
  ASSERT_EQ(fetches.size(), 1u);
  EXPECT_EQ(fetches[0].first, 0u);
  EXPECT_EQ(fetches[0].second, 4u);
  EXPECT_EQ(bc.stats().rehydrated_blocks, 4u);
  EXPECT_EQ(bc.stats().rehydrated_bytes, 16u);
  EXPECT_EQ(bc.stats().misses, 4u);
  // Second read is all hits.
  const auto again = bc.read("a", [&](std::uint32_t, std::uint32_t) {
    ADD_FAILURE() << "re-fetched a resident block";
    return content_ref();
  });
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(bc.stats().hits, 4u);
}

TEST(BlockCache, ReadFetchesOnlyTheAbsentRuns) {
  // Blocks 0 and 2 absent, block 1 resident (a dirty write pins it): the
  // read must issue one ranged fetch per absent run, skipping the middle.
  cache_config cfg = small_cfg(0);
  cfg.write_mode = cache_write_mode::write_back;
  block_cache bc(cfg);
  const content_ref content = bytes_of("0123456789ab");  // blocks 0,1,2
  bc.install("a", content);
  bc.note_local_write("a", bytes_of("0123XY6789ab"));  // block 1 dirty
  // Purge drops the clean blocks 0 and 2; the dirty middle block stays.
  EXPECT_EQ(bc.drop_clean_blocks(), 2u);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> fetches;
  const auto got = bc.read("a", [&](std::uint32_t first, std::uint32_t n) {
    fetches.push_back({first, n});
    return content.substr(first * 4, n * 4);
  });
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(fetches.size(), 2u);
  EXPECT_EQ(fetches[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(fetches[1], (std::pair<std::uint32_t, std::uint32_t>{2, 1}));
  EXPECT_TRUE(got->equal(bytes_of("0123XY6789ab")));
}

TEST(BlockCache, InvalidateForgetsPath) {
  block_cache bc(small_cfg(0));
  bc.install("a", bytes_of("aaaa"));
  bc.pin("a");
  bc.invalidate("a");
  EXPECT_FALSE(bc.tracks("a"));
  EXPECT_EQ(bc.resident_blocks(), 0u);
  EXPECT_EQ(bc.pinned_paths(), 0u);
  // Reinstalling after invalidate works (fresh file id).
  bc.install("a", bytes_of("bbbb"));
  EXPECT_TRUE(bc.probe_resident("a"));
}

TEST(BlockCache, ShrinkDropsTrailingBlocks) {
  block_cache bc(small_cfg(0));
  bc.install("a", bytes_of("0123456789ab"));
  EXPECT_EQ(bc.resident_blocks(), 3u);
  bc.install("a", bytes_of("0123"));
  EXPECT_EQ(bc.resident_blocks(), 1u);
  EXPECT_EQ(bc.resident_bytes(), 4u);
  const auto got = bc.read("a", [](std::uint32_t, std::uint32_t) {
    ADD_FAILURE() << "shrunken file should be fully resident";
    return content_ref();
  });
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->equal(bytes_of("0123")));
}

TEST(BlockCache, ProbeCountsMissesWhenPartiallyEvicted) {
  block_cache bc(small_cfg(0));
  bc.install("a", bytes_of("0123456789ab"));
  bc.drop_clean_blocks();
  EXPECT_FALSE(bc.probe_resident("a"));
  EXPECT_EQ(bc.stats().misses, 3u);
  EXPECT_FALSE(bc.probe_resident("nope"));
}

TEST(BlockCache, RandomizedResidencyConsistency) {
  // Fuzz the cache against a shadow map of expected content. After every
  // operation, a full read must reproduce the installed bytes exactly,
  // whatever was evicted in between.
  for (const cache_eviction policy : {cache_eviction::lru,
                                      cache_eviction::arc}) {
    SCOPED_TRACE(to_string(policy));
    cache_config cfg = small_cfg(64, policy);
    cfg.block_bytes = 8;
    cfg.write_mode = cache_write_mode::write_back;
    block_cache bc(cfg);
    std::map<std::string, content_ref> truth;
    rng r(policy == cache_eviction::lru ? 1u : 2u);
    for (int step = 0; step < 600; ++step) {
      const std::string path = "f" + std::to_string(r.uniform(6));
      switch (r.uniform(5)) {
        case 0: {  // (re)install
          const std::size_t n = 1 + r.uniform(40);
          truth[path] = rand_content(r, n);
          bc.install(path, truth[path]);
          break;
        }
        case 1:  // invalidate
          if (truth.count(path)) {
            bc.invalidate(path);
            truth.erase(path);
          }
          break;
        case 2:  // dirty write
          if (truth.count(path)) {
            truth[path] = rand_content(r, truth[path].size());
            bc.note_local_write(path, truth[path]);
          }
          break;
        case 3:  // purge clean blocks
          if (r.uniform(8) == 0) bc.drop_clean_blocks();
          break;
        default: {  // read everything back
          for (const auto& [p, want] : truth) {
            const auto got =
                bc.read(p, [&, w = want](std::uint32_t first,
                                         std::uint32_t count) {
                  return w.substr(first * 8,
                                  std::min<std::size_t>(
                                      count * 8, w.size() - first * 8));
                });
            ASSERT_TRUE(got.has_value()) << p << " step " << step;
            ASSERT_TRUE(got->equal(want)) << p << " step " << step;
          }
          break;
        }
      }
    }
  }
}

}  // namespace
}  // namespace cloudsync
