// Fault injection and the retry/backoff robustness layer: the fault_plan /
// fault_injector contract (determinism, inertness when disabled), and the
// sync engine's behaviour under pinned fault schedules — retries, delta→full
// fallback, requeue-and-recover, and poll failures.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hpp"

namespace cloudsync {
namespace {

experiment_config cfg_for(service_profile p) {
  experiment_config cfg{std::move(p)};
  cfg.method = access_method::pc_client;
  return cfg;
}

byte_buffer patterned(std::size_t n) {
  byte_buffer b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xff);
  }
  return b;
}

// ---------------------------------------------------------------------------
// fault_plan
// ---------------------------------------------------------------------------

TEST(FaultPlan, DisabledByDefault) {
  EXPECT_FALSE(fault_plan{}.enabled());
  EXPECT_FALSE(fault_plan::none().enabled());
  EXPECT_FALSE(fault_plan::degraded(0.0).enabled());
}

TEST(FaultPlan, DegradedScalesLinearly) {
  const fault_plan full = fault_plan::degraded(1.0);
  const fault_plan half = fault_plan::degraded(0.5);
  EXPECT_TRUE(full.enabled());
  EXPECT_DOUBLE_EQ(half.outages_per_hour, full.outages_per_hour / 2);
  EXPECT_DOUBLE_EQ(half.reset_prob, full.reset_prob / 2);
  EXPECT_DOUBLE_EQ(half.abort_prob, full.abort_prob / 2);
  EXPECT_DOUBLE_EQ(half.server_error_prob, full.server_error_prob / 2);
  EXPECT_DOUBLE_EQ(half.throttle_prob, full.throttle_prob / 2);
}

TEST(TransientFault, CarriesKindTimeAndRetryHint) {
  const transient_fault f(fault_kind::server_throttle, sim_time::from_sec(3),
                          sim_time::from_sec(9));
  EXPECT_EQ(f.kind(), fault_kind::server_throttle);
  EXPECT_EQ(f.at(), sim_time::from_sec(3));
  EXPECT_EQ(f.retry_after(), sim_time::from_sec(9));
  EXPECT_STREQ(f.what(), "server throttle");
  // Default hint: retry immediately.
  EXPECT_EQ(transient_fault(fault_kind::server_error, sim_time{}).retry_after(),
            sim_time{});
}

// ---------------------------------------------------------------------------
// fault_injector
// ---------------------------------------------------------------------------

TEST(FaultInjector, DisabledPlanIsInert) {
  fault_injector inj(fault_plan::none(), /*env_seed=*/1234);
  EXPECT_FALSE(inj.enabled());
  for (int s = 0; s < 100; ++s) {
    EXPECT_FALSE(inj.outage_end(sim_time::from_sec(s * 3600.0)).has_value());
    EXPECT_FALSE(inj.sample_exchange_fault().has_value());
    EXPECT_FALSE(inj.sample_server_fault().has_value());
  }
  EXPECT_EQ(inj.injected_total(), 0u);
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  const fault_plan plan = fault_plan::degraded(0.7, /*seed=*/42);
  fault_injector a(plan, /*env_seed=*/7);
  fault_injector b(plan, /*env_seed=*/7);
  // Identical outage schedules...
  for (int m = 0; m < 48 * 60; ++m) {
    const sim_time t = sim_time::from_sec(m * 60.0);
    EXPECT_EQ(a.outage_end(t), b.outage_end(t)) << "minute " << m;
  }
  // ...and identical per-event fault streams.
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.sample_exchange_fault(), b.sample_exchange_fault());
    EXPECT_EQ(a.sample_server_fault(), b.sample_server_fault());
    EXPECT_DOUBLE_EQ(a.jitter01(), b.jitter01());
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
}

TEST(FaultInjector, EnvSeedChangesTheStream) {
  const fault_plan plan = fault_plan::degraded(0.7);
  fault_injector a(plan, /*env_seed=*/7);
  fault_injector b(plan, /*env_seed=*/8);
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) {
    differs = a.jitter01() != b.jitter01();
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, OutageWindowsAreConsistent) {
  fault_plan plan;
  plan.outages_per_hour = 12.0;
  plan.outage_mean_duration = sim_time::from_sec(6);
  fault_injector inj(plan, /*env_seed=*/99);

  std::size_t hits = 0;
  for (int s = 0; s < 48 * 3600; s += 300) {
    const sim_time now = sim_time::from_sec(static_cast<double>(s));
    const auto end = inj.outage_end(now);
    if (!end) continue;
    ++hits;
    EXPECT_GT(*end, now);
    // The instant the window closes, the link is up again (windows are
    // disjoint, so the next window — if any — starts strictly later).
    const auto after = inj.outage_end(*end);
    if (after.has_value()) EXPECT_GT(*after, *end);
    // Every instant inside the window reports the same end.
    EXPECT_EQ(inj.outage_end(*end - sim_time::from_usec(1)), end);
  }
  // ~12 six-second outages per hour over 48 h: a 5-minute scan must land in
  // at least a few of them for any seed.
  EXPECT_GT(hits, 0u);
  // Far beyond the horizon the link is always up.
  EXPECT_FALSE(inj.outage_end(sim_time::from_sec(1000.0 * 3600)).has_value());
}

TEST(FaultInjector, ForcedCountsArmAndExpire) {
  fault_injector inj(fault_plan::none(), 0);
  EXPECT_FALSE(inj.enabled());

  inj.force_server_failures(2);
  EXPECT_TRUE(inj.enabled());
  EXPECT_EQ(inj.sample_server_fault(), fault_kind::server_error);
  EXPECT_EQ(inj.sample_server_fault(), fault_kind::server_error);
  EXPECT_FALSE(inj.sample_server_fault().has_value());
  EXPECT_FALSE(inj.enabled());

  inj.force_exchange_failures(1);
  EXPECT_TRUE(inj.enabled());
  EXPECT_EQ(inj.sample_exchange_fault(), fault_kind::connection_reset);
  EXPECT_FALSE(inj.sample_exchange_fault().has_value());
  EXPECT_FALSE(inj.enabled());

  EXPECT_EQ(inj.injected(fault_kind::server_error), 2u);
  EXPECT_EQ(inj.injected(fault_kind::connection_reset), 1u);
  EXPECT_EQ(inj.injected_total(), 3u);
}

// ---------------------------------------------------------------------------
// Composable plans: merged() and the crash-plan primitives
// ---------------------------------------------------------------------------

TEST(FaultPlanMerged, WithNoneIsIdentity) {
  const fault_plan a = fault_plan::degraded(0.6, /*seed=*/17);
  const fault_plan m = fault_plan::merged(a, fault_plan::none());

  EXPECT_EQ(m.seed, a.seed);
  EXPECT_DOUBLE_EQ(m.outages_per_hour, a.outages_per_hour);
  EXPECT_EQ(m.outage_mean_duration, a.outage_mean_duration);
  EXPECT_EQ(m.outage_horizon, a.outage_horizon);
  EXPECT_DOUBLE_EQ(m.reset_prob, a.reset_prob);
  EXPECT_DOUBLE_EQ(m.abort_prob, a.abort_prob);
  EXPECT_DOUBLE_EQ(m.server_error_prob, a.server_error_prob);
  EXPECT_DOUBLE_EQ(m.throttle_prob, a.throttle_prob);
  EXPECT_EQ(m.throttle_retry_after, a.throttle_retry_after);
  EXPECT_DOUBLE_EQ(m.crash_prob, a.crash_prob);
  EXPECT_EQ(m.fail_first_server_ops, a.fail_first_server_ops);
  EXPECT_EQ(m.fail_first_exchanges, a.fail_first_exchanges);

  // Identity must hold behaviourally too: the merged plan replays a's exact
  // fault schedule through a fresh injector.
  fault_injector ia(a, /*env_seed=*/5);
  fault_injector im(m, /*env_seed=*/5);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(ia.sample_exchange_fault(), im.sample_exchange_fault());
    EXPECT_EQ(ia.sample_server_fault(), im.sample_server_fault());
  }
  for (int minute = 0; minute < 120; ++minute) {
    const sim_time t = sim_time::from_sec(minute * 60.0);
    EXPECT_EQ(ia.outage_end(t), im.outage_end(t));
  }
}

TEST(FaultPlanMerged, RatesAddAndProbabilitiesCombineIndependently) {
  fault_plan a;
  a.outages_per_hour = 2.0;
  a.reset_prob = 0.2;
  a.crash_prob = 0.1;
  a.fail_first_exchanges = 3;
  fault_plan b;
  b.outages_per_hour = 1.0;
  b.reset_prob = 0.5;
  b.crash_prob = 0.3;
  b.fail_first_exchanges = 2;

  const fault_plan m = fault_plan::merged(a, b);
  EXPECT_DOUBLE_EQ(m.outages_per_hour, 3.0);
  // Independent events: 1 − (1−a)(1−b).
  EXPECT_DOUBLE_EQ(m.reset_prob, 1.0 - (1.0 - 0.2) * (1.0 - 0.5));
  EXPECT_DOUBLE_EQ(m.crash_prob, 1.0 - (1.0 - 0.1) * (1.0 - 0.3));
  EXPECT_EQ(m.fail_first_exchanges, 5);
  EXPECT_TRUE(m.enabled());
}

TEST(FaultPlanMerged, InactiveSideDoesNotLeakDurationDefaults) {
  fault_plan custom;
  custom.outages_per_hour = 1.0;
  custom.outage_mean_duration = sim_time::from_sec(99);
  custom.throttle_prob = 0.1;
  custom.throttle_retry_after = sim_time::from_sec(77);

  // b never uses its duration/hint fields (all its rates are zero), so its
  // defaults must not override custom's values — in either argument order.
  const fault_plan left = fault_plan::merged(custom, fault_plan::none());
  const fault_plan right = fault_plan::merged(fault_plan::none(), custom);
  EXPECT_EQ(left.outage_mean_duration, sim_time::from_sec(99));
  EXPECT_EQ(right.outage_mean_duration, sim_time::from_sec(99));
  EXPECT_EQ(left.throttle_retry_after, sim_time::from_sec(77));
  EXPECT_EQ(right.throttle_retry_after, sim_time::from_sec(77));
}

TEST(FaultPlanCrashes, SampledCrashesAreDeterministicAndBounded) {
  fault_plan plan = fault_plan::crashes(0.5, /*seed=*/21);
  plan.max_crashes = 4;
  EXPECT_TRUE(plan.enabled());

  fault_injector a(plan, /*env_seed=*/9);
  fault_injector b(plan, /*env_seed=*/9);
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    const bool ca = a.should_crash(crash_site::mid_chunk);
    EXPECT_EQ(ca, b.should_crash(crash_site::mid_chunk)) << "draw " << i;
    fired += ca ? 1 : 0;
  }
  // max_crashes bounds the cascade even at 50% per site.
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(a.crashes_injected(), 4);
  EXPECT_EQ(a.injected(fault_kind::client_crash), 4u);
}

TEST(FaultInjector, ForcedCrashFiresOnceAtItsSiteOnly) {
  fault_injector inj(fault_plan::none(), 0);
  inj.force_crash(crash_site::before_commit, /*skip=*/1);
  EXPECT_TRUE(inj.enabled());

  // Other sites never trigger a forced crash (and consume no RNG).
  EXPECT_FALSE(inj.should_crash(crash_site::after_plan));
  EXPECT_FALSE(inj.should_crash(crash_site::mid_chunk));
  // First opportunity at the armed site is skipped, the second fires.
  EXPECT_FALSE(inj.should_crash(crash_site::before_commit));
  EXPECT_TRUE(inj.should_crash(crash_site::before_commit));
  // One-shot: disarmed afterwards.
  EXPECT_FALSE(inj.should_crash(crash_site::before_commit));
  EXPECT_FALSE(inj.enabled());
  EXPECT_EQ(inj.crashes_injected(), 1);
}

// ---------------------------------------------------------------------------
// Per-connection fault domains (the transfer scheduler's parallel flows)
// ---------------------------------------------------------------------------

TEST(FaultInjector, DomainZeroIsTheInjectorItself) {
  fault_injector inj(fault_plan::degraded(0.5), /*env_seed=*/7);
  EXPECT_EQ(&inj.domain(0), &inj);
  EXPECT_EQ(inj.domain_count(), 0u);
}

TEST(FaultInjector, DomainsAreStableAndDeterministic) {
  const fault_plan plan = fault_plan::degraded(0.5, /*seed=*/42);
  fault_injector a(plan, /*env_seed=*/7);
  fault_injector b(plan, /*env_seed=*/7);

  // Repeated lookups return the same child; creating domain 3 materializes
  // the lower-numbered ones too.
  fault_injector& a3 = a.domain(3);
  EXPECT_EQ(&a.domain(3), &a3);
  EXPECT_EQ(a.domain_count(), 3u);

  // Two injectors built from the same (plan, env seed) grow identical
  // domain streams.
  for (std::uint32_t d = 1; d <= 3; ++d) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(a.domain(d).sample_exchange_fault(),
                b.domain(d).sample_exchange_fault())
          << "domain " << d << " draw " << i;
    }
  }
  EXPECT_EQ(a.injected_total_all_domains(), b.injected_total_all_domains());
}

TEST(FaultInjector, DomainsAreIndependentSchedules) {
  fault_injector inj(fault_plan::degraded(1.0, /*seed=*/42), /*env_seed=*/7);
  // Sibling domains must not share a fault stream: collect each domain's
  // fault/no-fault pattern over a window and require at least one mismatch.
  std::vector<std::vector<bool>> pattern(3);
  for (std::uint32_t d = 1; d <= 3; ++d) {
    for (int i = 0; i < 64; ++i) {
      pattern[d - 1].push_back(
          inj.domain(d).sample_exchange_fault().has_value());
    }
  }
  EXPECT_NE(pattern[0], pattern[1]);
  EXPECT_NE(pattern[1], pattern[2]);
}

TEST(FaultInjector, DomainDrawsNeverTouchTheMainStream) {
  const fault_plan plan = fault_plan::degraded(0.7, /*seed=*/42);
  fault_injector pristine(plan, /*env_seed=*/7);
  fault_injector used(plan, /*env_seed=*/7);
  // Hammer the child domains of one injector...
  for (std::uint32_t d = 1; d <= 4; ++d) {
    for (int i = 0; i < 500; ++i) {
      used.domain(d).sample_exchange_fault();
      used.domain(d).jitter01();
    }
  }
  // ...and the main (domain-0) streams still march in lockstep: existing
  // single-connection identities survive scheduler activity.
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(pristine.sample_exchange_fault(), used.sample_exchange_fault());
    EXPECT_DOUBLE_EQ(pristine.jitter01(), used.jitter01());
  }
}

TEST(FaultInjector, ChildDomainsDropForcedAndCrashFaults) {
  // Count-based forced faults and crash probability belong to the main
  // schedule; children only inherit the stochastic link/server rates.
  fault_plan plan = fault_plan::degraded(0.5, /*seed=*/42);
  plan.fail_first_exchanges = 3;
  fault_injector inj(plan, /*env_seed=*/7);
  EXPECT_EQ(inj.domain(1).plan().fail_first_exchanges, 0);
  EXPECT_EQ(inj.domain(1).plan().fail_first_server_ops, 0);
  EXPECT_EQ(inj.domain(1).plan().crash_prob, 0.0);
  EXPECT_EQ(inj.plan().fail_first_exchanges, 3);
}

// ---------------------------------------------------------------------------
// Sync engine under faults
// ---------------------------------------------------------------------------

// A minimal clock+cloud+client rig wired by hand, so the same workload can
// run once with no injector and once with a wired-but-disabled one.
struct manual_rig {
  sim_clock clock;
  cloud cl{cloud_config{}};
  memfs fs;
  std::unique_ptr<sync_client> client;

  explicit manual_rig(fault_injector* inj) {
    sync_options opts;
    opts.profile = dropbox();
    opts.method = access_method::pc_client;
    opts.faults = inj;
    client = std::make_unique<sync_client>(clock, fs, cl, 0, std::move(opts));
    cl.set_fault_injector(inj);
  }

  void settle() {
    for (int guard = 0; guard < 100; ++guard) {
      clock.run_all();
      clock.advance_to(std::max(clock.now(), client->busy_until()));
      if (!client->has_pending() && clock.pending() == 0) return;
    }
  }

  void run_workload() {
    fs.create("w/file", patterned(64 * KiB), clock.now());
    settle();
    byte_buffer v2 = patterned(64 * KiB);
    v2[1000] ^= 0xff;
    fs.write("w/file", std::move(v2), clock.now());
    settle();
  }
};

TEST(SyncWithFaults, WiredButDisabledInjectorIsByteIdentical) {
  // The tentpole invariant: attaching an injector with an all-zero plan must
  // not change a single metered byte or timestamp.
  manual_rig plain(nullptr);
  fault_injector inert(fault_plan::none(), /*env_seed=*/1234);
  manual_rig wired(&inert);

  plain.run_workload();
  wired.run_workload();

  for (const direction d : {direction::up, direction::down}) {
    for (int c = 0; c < static_cast<int>(traffic_category::kCount); ++c) {
      const auto cat = static_cast<traffic_category>(c);
      EXPECT_EQ(plain.client->meter().get(d, cat),
                wired.client->meter().get(d, cat))
          << "direction " << static_cast<int>(d) << " category "
          << to_string(cat);
    }
  }
  EXPECT_EQ(plain.client->busy_until(), wired.client->busy_until());
  EXPECT_EQ(plain.client->commit_count(), wired.client->commit_count());
  EXPECT_EQ(plain.client->handshake_count(), wired.client->handshake_count());
  EXPECT_EQ(plain.client->exchange_count(), wired.client->exchange_count());
  EXPECT_EQ(wired.client->retry_count(), 0u);
  EXPECT_EQ(inert.injected_total(), 0u);
}

TEST(SyncWithFaults, ExchangeFaultsRetryUntilSuccess) {
  experiment_env env(cfg_for(dropbox()));
  station& st = env.primary();
  st.fs.create("f", patterned(128 * KiB), env.clock().now());
  env.settle();
  ASSERT_TRUE(env.the_cloud().file_content(0, "f").has_value());

  const auto snap = st.client->meter().snap();
  env.faults().force_exchange_failures(2);
  modify_random_byte(st.fs, "f", env.random(), env.clock().now());
  env.settle();

  // Both connection resets were retried within the same transaction.
  EXPECT_EQ(st.client->retry_count(), 2u);
  EXPECT_EQ(st.client->requeue_count(), 0u);
  EXPECT_EQ(st.client->fallback_count(), 0u);
  EXPECT_EQ(env.faults().injected(fault_kind::connection_reset), 2u);
  // The wasted control segments were metered as retry traffic.
  EXPECT_GT(st.client->meter().by_category(traffic_category::retry), 0u);
  EXPECT_GT(experiment_env::traffic_since(st, snap), 0u);
  // And the cloud still converged to the local content.
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "f")),
            to_string(st.fs.read("f")));
}

TEST(SyncWithFaults, ServerRejectionsFallBackToFullUpload) {
  experiment_env env(cfg_for(dropbox()));  // delta-sync service
  station& st = env.primary();
  const byte_buffer original = make_compressed_file(env.random(), 256 * KiB);
  st.fs.create("big", original, env.clock().now());
  env.settle();

  const auto snap = st.client->meter().snap();
  // Exactly delta_fallback_after rejections: the delta path is abandoned and
  // the change re-ships as a full upload.
  ASSERT_EQ(env.config().retry.delta_fallback_after, 2);
  env.faults().force_server_failures(2);
  modify_random_byte(st.fs, "big", env.random(), env.clock().now());
  env.settle();

  EXPECT_EQ(st.client->fallback_count(), 1u);
  EXPECT_GE(st.client->retry_count(), 2u);
  EXPECT_EQ(st.client->requeue_count(), 0u);
  // A one-byte edit normally ships one ~10 KB chunk; the fallback re-ships
  // the whole (incompressible) file.
  EXPECT_GT(experiment_env::traffic_since(st, snap), 200 * KiB);
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "big")),
            to_string(st.fs.read("big")));
}

TEST(SyncWithFaults, GiveUpRequeuesAndEventuallySyncs) {
  experiment_env env(cfg_for(google_drive()));
  station& st = env.primary();
  ASSERT_EQ(env.config().retry.max_attempts, 6);

  // 12 consecutive exchange failures = two full rounds of exhausted attempts
  // (each requeued with a cooldown), then the third round succeeds.
  env.faults().force_exchange_failures(12);
  st.fs.create("stubborn", patterned(32 * KiB), env.clock().now());
  env.settle();

  EXPECT_EQ(st.client->retry_count(), 12u);
  EXPECT_EQ(st.client->requeue_count(), 2u);
  ASSERT_TRUE(env.the_cloud().file_content(0, "stubborn").has_value());
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "stubborn")),
            to_string(st.fs.read("stubborn")));
  // Nothing left dirty once it finally landed.
  EXPECT_FALSE(st.client->has_pending());
}

TEST(SyncWithFaults, PollFailureLeavesQueueIntact) {
  experiment_env env(cfg_for(dropbox()));
  station& a = env.primary();
  station& b = env.add_station(0);  // second device, same account

  a.fs.create("shared/doc", patterned(4 * KiB), env.clock().now());
  env.settle();

  // The first poll is rejected by the server; the notification queue must
  // survive untouched.
  env.faults().force_server_failures(1);
  EXPECT_EQ(b.client->poll_remote_changes(), 0u);
  EXPECT_EQ(b.client->poll_failure_count(), 1u);
  EXPECT_FALSE(b.fs.exists("shared/doc"));
  EXPECT_GT(b.client->meter().by_category(traffic_category::retry), 0u);

  // The retried poll drains everything the failed one left behind.
  EXPECT_GE(b.client->poll_remote_changes(), 1u);
  env.settle();
  ASSERT_TRUE(b.fs.exists("shared/doc"));
  EXPECT_EQ(to_string(b.fs.read("shared/doc")),
            to_string(a.fs.read("shared/doc")));
}

}  // namespace
}  // namespace cloudsync
