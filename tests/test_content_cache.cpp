// The content cache must be a pure memoization layer: every cached answer is
// byte-identical to direct recomputation, LRU bounding works, and turning the
// cache on cannot change any experiment output.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cloudsync.hpp"

namespace cloudsync {
namespace {

TEST(ContentHash64, DistinguishesContentLengthAndEmpty) {
  rng r(99);
  const byte_buffer a = random_bytes(r, 1000);
  byte_buffer b = a;
  b[500] ^= 1;
  EXPECT_NE(content_hash64(a), content_hash64(b));
  EXPECT_NE(content_hash64(a), content_hash64(byte_view{a.data(), 999}));
  EXPECT_EQ(content_hash64(byte_view{}), content_hash64(byte_view{}));
  // Deterministic across calls.
  EXPECT_EQ(content_hash64(a), content_hash64(a));
}

TEST(ContentCache, PropertyCachedEqualsRecomputedAcrossContentsAndLevels) {
  content_cache cache(256);
  rng r(4321);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(r.uniform(48 * 1024));
    const byte_buffer content = r.chance(0.5) ? random_bytes(r, n)
                                              : random_text(r, n);
    const int level = static_cast<int>(r.uniform(10));
    const std::uint64_t direct = wire_payload_size(content, level);
    // First call computes and stores; second must come from the cache.
    EXPECT_EQ(cache.shipped_size(content, level, &wire_payload_size), direct);
    EXPECT_EQ(cache.shipped_size(content, level, &wire_payload_size), direct);
  }
  const content_cache_stats st = cache.stats();
  EXPECT_EQ(st.hits, 60u);
  EXPECT_EQ(st.misses, 60u);
}

TEST(ContentCache, SizeIsKeyedByLevel) {
  content_cache cache(16);
  rng r(7);
  const byte_buffer text = random_text(r, 8 * 1024);
  const std::uint64_t l1 = cache.shipped_size(text, 1, &wire_payload_size);
  const std::uint64_t l9 = cache.shipped_size(text, 9, &wire_payload_size);
  EXPECT_EQ(l1, wire_payload_size(text, 1));
  EXPECT_EQ(l9, wire_payload_size(text, 9));
  EXPECT_NE(l1, l9);  // different levels really are distinct entries
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ContentMemo, LruEvictsOldestAndRefreshesOnHit) {
  content_memo<int> memo(2);
  const byte_buffer a{1}, b{2}, c{3};
  int computed = 0;
  auto val = [&](int v) {
    return [&computed, v] {
      ++computed;
      return v;
    };
  };
  memo.get_or_compute(a, 0, val(1));
  memo.get_or_compute(b, 0, val(2));
  memo.get_or_compute(a, 0, val(1));  // hit: refreshes a's recency
  memo.get_or_compute(c, 0, val(3));  // evicts b (least recently used)
  EXPECT_EQ(computed, 3);
  EXPECT_TRUE(memo.find(a, 0).has_value());
  EXPECT_FALSE(memo.find(b, 0).has_value());
  EXPECT_TRUE(memo.find(c, 0).has_value());
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.stats().evictions, 1u);
  // Re-inserting the evicted key recomputes.
  EXPECT_EQ(memo.get_or_compute(b, 0, val(2)), 2);
  EXPECT_EQ(computed, 4);
}

TEST(ContentMemo, CapacityIsNeverExceeded) {
  content_memo<std::uint64_t> memo(8);
  rng r(11);
  for (int i = 0; i < 100; ++i) {
    const byte_buffer content = random_bytes(r, 64);
    memo.get_or_compute(content, 0, [i] { return std::uint64_t(i); });
    EXPECT_LE(memo.size(), 8u);
  }
  EXPECT_EQ(memo.stats().evictions, 92u);
}

TEST(ContentMemo, SaltSeparatesEntries) {
  content_memo<int> memo(16);
  const byte_buffer content{42, 42, 42};
  EXPECT_EQ(memo.get_or_compute(content, 1, [] { return 10; }), 10);
  EXPECT_EQ(memo.get_or_compute(content, 2, [] { return 20; }), 20);
  EXPECT_EQ(memo.get_or_compute(content, 1, [] { return -1; }), 10);
  EXPECT_EQ(memo.get_or_compute(content, 2, [] { return -1; }), 20);
}

TEST(GenerationMemo, CachedGenerationMatchesDirectBitForBit) {
  // Same seed: the cached generator must produce the same bytes AND leave the
  // rng in the same state as direct generation, for interleaved size/kind
  // sequences (the second pass hits the memo).
  for (int pass = 0; pass < 2; ++pass) {
    rng direct(2024), cached(2024);
    for (const std::size_t n : {1000u, 50u * 1024u, 1000u}) {
      EXPECT_EQ(make_compressed_file(direct, n),
                make_compressed_file_cached(cached, n));
      EXPECT_EQ(make_text_file(direct, n), make_text_file_cached(cached, n));
    }
    EXPECT_EQ(direct.next(), cached.next());  // states advanced identically
  }
}

TEST(ExperimentCache, CacheOnAndOffProduceIdenticalTraffic) {
  for (const service_profile& s : all_services()) {
    experiment_config on;
    on.profile = s;
    experiment_config off = on;
    on.use_content_cache = true;
    off.use_content_cache = false;
    EXPECT_EQ(measure_creation_traffic(on, 96 * 1024),
              measure_creation_traffic(off, 96 * 1024))
        << s.name;
    EXPECT_EQ(measure_modification_traffic(on, 64 * 1024),
              measure_modification_traffic(off, 64 * 1024))
        << s.name;
    EXPECT_EQ(measure_text_upload_traffic(on, 48 * 1024),
              measure_text_upload_traffic(off, 48 * 1024))
        << s.name;
  }
}

}  // namespace
}  // namespace cloudsync
