// The calibrated service profiles must encode the paper's Tables 6-9 facts.
#include <gtest/gtest.h>

#include "client/hardware.hpp"
#include "client/service_profile.hpp"

namespace cloudsync {
namespace {

TEST(ServiceProfiles, AllSixPresent) {
  const auto services = all_services();
  ASSERT_EQ(services.size(), 6u);
  EXPECT_EQ(services[0].name, "Google Drive");
  EXPECT_EQ(services[1].name, "OneDrive");
  EXPECT_EQ(services[2].name, "Dropbox");
  EXPECT_EQ(services[3].name, "Box");
  EXPECT_EQ(services[4].name, "Ubuntu One");
  EXPECT_EQ(services[5].name, "SugarSync");
}

TEST(ServiceProfiles, FindByName) {
  EXPECT_TRUE(find_service("Dropbox").has_value());
  EXPECT_EQ(find_service("Dropbox")->name, "Dropbox");
  EXPECT_FALSE(find_service("iCloud Drive").has_value());
}

TEST(ServiceProfiles, OnlyDropboxAndSugarSyncUseIdsOnPc) {
  for (const service_profile& s : all_services()) {
    const bool ids = s.method(access_method::pc_client).incremental_sync;
    EXPECT_EQ(ids, s.name == "Dropbox" || s.name == "SugarSync") << s.name;
    // Fig 4(b)/(c): web and mobile never use IDS.
    EXPECT_FALSE(s.method(access_method::web_browser).incremental_sync);
    EXPECT_FALSE(s.method(access_method::mobile_app).incremental_sync);
  }
}

TEST(ServiceProfiles, DedupGranularityMatchesTable9) {
  EXPECT_EQ(google_drive().dedup.granularity, dedup_granularity::none);
  EXPECT_EQ(onedrive().dedup.granularity, dedup_granularity::none);
  EXPECT_EQ(box().dedup.granularity, dedup_granularity::none);
  EXPECT_EQ(sugarsync().dedup.granularity, dedup_granularity::none);

  const service_profile db = dropbox();
  EXPECT_EQ(db.dedup.granularity, dedup_granularity::fixed_block);
  EXPECT_EQ(db.dedup.block_size, 4 * MiB);
  EXPECT_FALSE(db.dedup.cross_user);  // same-account only

  const service_profile u1 = ubuntu_one();
  EXPECT_EQ(u1.dedup.granularity, dedup_granularity::full_file);
  EXPECT_TRUE(u1.dedup.cross_user);
}

TEST(ServiceProfiles, WebNeverDedupsOrCompressesUploads) {
  for (const service_profile& s : all_services()) {
    const method_profile& web = s.method(access_method::web_browser);
    EXPECT_FALSE(web.dedup_enabled) << s.name;
    EXPECT_EQ(web.upload_compression_level, 0) << s.name;
  }
}

TEST(ServiceProfiles, CompressionMatchesTable8) {
  // Upload: only Dropbox and Ubuntu One compress (PC more than mobile).
  for (const service_profile& s : all_services()) {
    const bool compresses_up =
        s.method(access_method::pc_client).upload_compression_level > 0;
    EXPECT_EQ(compresses_up, s.name == "Dropbox" || s.name == "Ubuntu One")
        << s.name;
    if (compresses_up) {
      EXPECT_GT(s.method(access_method::pc_client).upload_compression_level,
                s.method(access_method::mobile_app).upload_compression_level)
          << s.name;
    }
  }
  // Download: only Dropbox compresses for every access method.
  const service_profile db = dropbox();
  for (access_method m : all_access_methods) {
    EXPECT_GT(db.method(m).download_compression_level, 0);
  }
  const service_profile u1 = ubuntu_one();
  EXPECT_GT(u1.method(access_method::pc_client).download_compression_level, 0);
  EXPECT_EQ(u1.method(access_method::mobile_app).download_compression_level,
            0);
}

TEST(ServiceProfiles, DeferTimersMatchFig6) {
  EXPECT_EQ(google_drive().defer.policy, defer_config::kind::fixed);
  EXPECT_NEAR(google_drive().defer.fixed_deferment.sec(), 4.2, 1e-9);
  EXPECT_NEAR(onedrive().defer.fixed_deferment.sec(), 10.5, 1e-9);
  EXPECT_NEAR(sugarsync().defer.fixed_deferment.sec(), 6.0, 1e-9);
  EXPECT_EQ(dropbox().defer.policy, defer_config::kind::none);
  EXPECT_EQ(box().defer.policy, defer_config::kind::none);
  EXPECT_EQ(ubuntu_one().defer.policy, defer_config::kind::none);
}

TEST(ServiceProfiles, BdsMatchesTable7) {
  // Only Dropbox and Ubuntu One batch small-file creations (PC + partial web).
  for (const service_profile& s : all_services()) {
    const bool bds_pc = s.method(access_method::pc_client).batched_sync;
    EXPECT_EQ(bds_pc, s.name == "Dropbox" || s.name == "Ubuntu One") << s.name;
  }
}

TEST(ServiceProfiles, DropboxDeltaChunkTenKb) {
  EXPECT_EQ(dropbox().delta_chunk_size, 10 * KiB);
}

TEST(ServiceProfiles, WithDeferOverrides) {
  const service_profile gd_asd =
      with_defer(google_drive(), defer_config::asd());
  EXPECT_EQ(gd_asd.defer.policy, defer_config::kind::adaptive);
  EXPECT_EQ(gd_asd.name, "Google Drive");
}

TEST(ServiceProfiles, OverheadsArePositive) {
  for (const service_profile& s : all_services()) {
    for (access_method m : all_access_methods) {
      EXPECT_GT(s.method(m).base_overhead_up, 0u) << s.name;
      EXPECT_GE(s.method(m).per_payload_metadata, 0.0) << s.name;
      EXPECT_LT(s.method(m).per_payload_metadata, 0.5) << s.name;
    }
  }
}

TEST(AccessMethod, Names) {
  EXPECT_STREQ(to_string(access_method::pc_client), "PC client");
  EXPECT_STREQ(to_string(access_method::web_browser), "Web-based");
  EXPECT_STREQ(to_string(access_method::mobile_app), "Mobile app");
}

TEST(Hardware, ProfilesOrdered) {
  // Index throughput: advanced > typical > outdated >= smartphone.
  EXPECT_GT(hardware_profile::m3().index_bytes_per_sec,
            hardware_profile::m1().index_bytes_per_sec);
  EXPECT_GT(hardware_profile::m1().index_bytes_per_sec,
            hardware_profile::m2().index_bytes_per_sec);
  EXPECT_GE(hardware_profile::m2().index_bytes_per_sec,
            hardware_profile::m4().index_bytes_per_sec);
}

TEST(Hardware, IndexTimeScalesWithSize) {
  const hardware_profile hw = hardware_profile::m1();
  EXPECT_GT(hw.index_time(10 * MiB), hw.index_time(1 * MiB));
  EXPECT_GE(hw.index_time(0), hw.index_fixed_latency);
}

}  // namespace
}  // namespace cloudsync
