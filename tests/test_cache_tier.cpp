// Engine-level integration of the client cache tier: the uncapped-cache
// byte-identity invariant, cache-aware delta planning (evicted shadow ->
// full-file fallback), rehydration metering, write-back flushing through
// the journal/crash machinery, pinning under capacity pressure, and the
// thread-count determinism of cache-enabled fleet replays. Unit tests for
// the cache itself live in test_block_cache.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/fleet.hpp"
#include "core/invariants.hpp"
#include "core/parallel_runner.hpp"

namespace cloudsync {
namespace {

experiment_config tier_cfg(std::uint64_t capacity,
                           cache_eviction policy = cache_eviction::lru,
                           cache_write_mode mode =
                               cache_write_mode::write_through,
                           double window_sec = 4.0) {
  experiment_config cfg{dropbox()};
  cfg.method = access_method::pc_client;
  cfg.cache_tier = true;
  cfg.cache.capacity_bytes = capacity;
  cfg.cache.block_bytes = 8 * KiB;
  cfg.cache.policy = policy;
  cfg.cache.write_mode = mode;
  cfg.cache.coalesce_window = sim_time::from_sec(window_sec);
  return cfg;
}

bool same_meter(const traffic_meter& a, const traffic_meter& b) {
  for (int d = 0; d < 2; ++d) {
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
      const auto dir = static_cast<direction>(d);
      const auto cat = static_cast<traffic_category>(c);
      if (a.get(dir, cat) != b.get(dir, cat)) return false;
    }
  }
  return true;
}

invariant_report check_all(experiment_env& env, station& st) {
  invariant_report report;
  check_convergence(st.fs, env.the_cloud(), st.user, report);
  check_journal_quiescent(st.journal, env.the_cloud(), report);
  check_no_duplicate_commits(st.journal, env.the_cloud(), st.user, report);
  const traffic_meter aggregate = st.aggregate_meter();
  std::vector<const traffic_meter*> parts;
  for (const traffic_meter& m : st.retired_meters) parts.push_back(&m);
  if (st.client) parts.push_back(&st.client->meter());
  check_meter_conservation(aggregate, parts, report);
  return report;
}

// ---------------------------------------------------------------------------
// Uncapped identity: the tier is invisible until capacity forces its hand.
// ---------------------------------------------------------------------------

TEST(BlockCacheTier, UncappedWriteThroughIsByteIdenticalToCacheless) {
  experiment_config cacheless{dropbox()};
  cacheless.method = access_method::pc_client;
  const cache_run_result base = run_cache_experiment(
      cacheless, cache_workload::looping_scan, 6, 32 * KiB);
  for (const cache_eviction policy : {cache_eviction::lru,
                                      cache_eviction::arc}) {
    SCOPED_TRACE(to_string(policy));
    const cache_run_result cached = run_cache_experiment(
        tier_cfg(0, policy), cache_workload::looping_scan, 6, 32 * KiB);
    EXPECT_TRUE(same_meter(base.meter, cached.meter));
    EXPECT_EQ(base.total_traffic, cached.total_traffic);
    EXPECT_EQ(base.commits, cached.commits);
    // An uncapped cache never misses after install and never rehydrates.
    EXPECT_EQ(cached.rehydrate_traffic, 0u);
    EXPECT_EQ(cached.cache.evictions, 0u);
    EXPECT_DOUBLE_EQ(cached.hit_ratio, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Cache-aware planning: no resident old version -> no delta basis.
// ---------------------------------------------------------------------------

TEST(BlockCacheTier, EvictedShadowFallsBackToFullFileUpload) {
  experiment_env env(tier_cfg(0));
  station& st = env.primary();
  st.fs.create("doc", env.gen_text(64 * KiB), env.clock().now());
  env.settle();
  ASSERT_TRUE(st.cache != nullptr);
  ASSERT_TRUE(st.cache->tracks("doc"));

  // Purge the device cache, then edit: planning probes residency, finds the
  // old version gone, and must ship the whole file instead of a delta.
  st.cache->drop_clean_blocks();
  modify_random_byte(st.fs, "doc", env.random(), env.clock().now());
  env.settle();

  EXPECT_GE(st.cache->stats().plan_fallbacks, 1u);
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "doc")),
            to_string(st.fs.read("doc")));
  // The full-file fallback re-installed the new version: resident again.
  EXPECT_TRUE(st.cache->probe_resident("doc"));
}

TEST(BlockCacheTier, ResidentShadowStillPlansDelta) {
  // Control for the fallback test: with the old version resident, the same
  // edit ships as a delta — full-file fallback would cost far more than
  // the whole file's bytes in payload.
  auto payload_up = [](bool purge) {
    experiment_env env(tier_cfg(0));
    station& st = env.primary();
    st.fs.create("doc", env.gen_text(64 * KiB), env.clock().now());
    env.settle();
    if (purge) st.cache->drop_clean_blocks();
    const traffic_meter::snapshot snap = st.client->meter().snap();
    modify_random_byte(st.fs, "doc", env.random(), env.clock().now());
    env.settle();
    EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "doc")),
              to_string(st.fs.read("doc")));
    return st.client->meter().total_since(snap);
  };
  const std::uint64_t delta_bytes = payload_up(false);
  const std::uint64_t full_bytes = payload_up(true);
  EXPECT_LT(delta_bytes, full_bytes);
}

// ---------------------------------------------------------------------------
// Rehydration: reads of evicted blocks fetch from the cloud, metered.
// ---------------------------------------------------------------------------

TEST(BlockCacheTier, ColdReadRehydratesAndMetersTraffic) {
  experiment_env env(tier_cfg(0));
  station& st = env.primary();
  st.fs.create("cold", env.gen_compressed(64 * KiB), env.clock().now());
  env.settle();
  ASSERT_EQ(st.cache->drop_clean_blocks(), 8u);  // 64 KiB / 8 KiB blocks

  const content_ref got = st.client->read_file("cold");
  EXPECT_EQ(to_string(got), to_string(st.fs.read("cold")));
  EXPECT_EQ(st.cache->stats().rehydrated_blocks, 8u);
  EXPECT_GT(st.client->meter().get(direction::down,
                                   traffic_category::rehydrate),
            0u);
  EXPECT_GT(st.client->meter().get(direction::up,
                                   traffic_category::rehydrate),
            0u);
  // Resident again: the next read is free.
  const traffic_meter::snapshot snap = st.client->meter().snap();
  st.client->read_file("cold");
  EXPECT_EQ(st.client->meter().total_since(snap), 0u);
}

TEST(BlockCacheTier, CachelessRunNeverMetersRehydrate) {
  experiment_config cfg{dropbox()};
  cfg.method = access_method::pc_client;
  const cache_run_result r = run_cache_experiment(
      cfg, cache_workload::looping_scan, 4, 32 * KiB);
  EXPECT_EQ(r.rehydrate_traffic, 0u);
  EXPECT_EQ(r.meter.by_category(traffic_category::rehydrate), 0u);
}

// ---------------------------------------------------------------------------
// Pinning under pressure, end to end.
// ---------------------------------------------------------------------------

TEST(BlockCacheTier, PinnedPathStaysResidentThroughCapacityPressure) {
  // Capacity fits two 32 KiB files; five files cycle through. The pinned
  // one must remain fully resident no matter what the scan does.
  experiment_env env(tier_cfg(64 * KiB));
  station& st = env.primary();
  for (int i = 0; i < 5; ++i) {
    st.fs.create("f" + std::to_string(i), env.gen_compressed(32 * KiB),
                 env.clock().now());
  }
  env.settle();
  // Pin then hydrate: blocks evicted during the initial sync churn come
  // back once, and from here on eviction must route around them.
  st.cache->pin("f0");
  st.client->read_file("f0");
  ASSERT_TRUE(st.cache->probe_resident("f0"));
  for (int round = 0; round < 3; ++round) {
    for (int i = 1; i < 5; ++i) st.client->read_file("f" + std::to_string(i));
  }
  EXPECT_GT(st.cache->stats().evictions, 0u);
  EXPECT_TRUE(st.cache->probe_resident("f0")) << "pinned path was evicted";
  EXPECT_EQ(st.cache->pinned_paths(), 1u);
}

// ---------------------------------------------------------------------------
// Write-back: coalescing pays, and flushes ride the journal + crash
// machinery without losing or duplicating dirty blocks.
// ---------------------------------------------------------------------------

TEST(BlockCacheTier, WriteBackCoalescesAndBeatsWriteThrough) {
  service_profile profile = with_defer(dropbox(), defer_config::none());
  auto run = [&](cache_write_mode mode) {
    experiment_config cfg{profile};
    cfg.method = access_method::pc_client;
    cfg.cache_tier = true;
    cfg.cache.block_bytes = 8 * KiB;
    cfg.cache.write_mode = mode;
    cfg.cache.coalesce_window = sim_time::from_sec(5.0);
    return run_cache_experiment(cfg, cache_workload::frequent_mods, 4,
                                32 * KiB);
  };
  const cache_run_result wt = run(cache_write_mode::write_through);
  const cache_run_result wb = run(cache_write_mode::write_back);
  EXPECT_LT(wb.commits, wt.commits);
  EXPECT_LT(wb.tue, wt.tue);
  EXPECT_GT(wb.cache.dirty_coalesced, 0u);
  EXPECT_GT(wb.cache.flushes, 0u);
}

TEST(BlockCacheTier, WriteBackQueueDrainsOnSettle) {
  experiment_env env(tier_cfg(0, cache_eviction::lru,
                              cache_write_mode::write_back, 6.0));
  station& st = env.primary();
  st.fs.create("doc", env.gen_text(32 * KiB), env.clock().now());
  env.settle();
  modify_random_byte(st.fs, "doc", env.random(), env.clock().now());
  // The write was intercepted into the dirty queue, not synced yet.
  EXPECT_EQ(st.client->write_back_pending(), 1u);
  EXPECT_EQ(st.cache->dirty_paths(), 1u);
  env.settle();
  EXPECT_EQ(st.client->write_back_pending(), 0u);
  EXPECT_EQ(st.cache->dirty_paths(), 0u);
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "doc")),
            to_string(st.fs.read("doc")));
}

class BlockCacheCrash : public ::testing::TestWithParam<bool> {};

TEST_P(BlockCacheCrash, WriteBackFlushCrashRecoversWithoutLossOrDuplication) {
  const bool resume = GetParam();
  experiment_config cfg = tier_cfg(0, cache_eviction::lru,
                                   cache_write_mode::write_back, 4.0);
  cfg.journal = true;
  cfg.recovery.resume = resume;
  cfg.recovery.chunk_bytes = 2 * KiB;
  experiment_env env(cfg);
  station& st = env.primary();
  st.fs.create("wb/doc", env.gen_compressed(128 * KiB), env.clock().now());
  env.settle();
  ASSERT_EQ(st.crashes, 0u);

  // Edit through the write-back window, then die mid-flush: the coalesced
  // dirty blocks are in a journaled upload when the client vanishes.
  env.faults().force_crash(crash_site::mid_chunk, 1);
  modify_random_byte(st.fs, "wb/doc", env.random(), env.clock().now());
  env.settle();

  EXPECT_EQ(st.crashes, 1u);
  // No lost dirty blocks: the cloud holds exactly the local content.
  EXPECT_EQ(to_string(*env.the_cloud().file_content(0, "wb/doc")),
            to_string(st.fs.read("wb/doc")));
  // No duplicated dirty blocks: the journal records exactly one commit per
  // transaction (check_no_duplicate_commits), and nothing is left queued.
  const invariant_report report = check_all(env, st);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(st.client->write_back_pending(), 0u);
  EXPECT_EQ(st.cache->dirty_blocks(), 0u);
  // The station-durable cache adopted the synced version.
  EXPECT_TRUE(st.cache->probe_resident("wb/doc"));
}

INSTANTIATE_TEST_SUITE_P(ResumeOnOff, BlockCacheCrash, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("resume")
                                             : std::string("restart");
                         });

// ---------------------------------------------------------------------------
// Determinism: cache-enabled runs are identical across thread counts.
// ---------------------------------------------------------------------------

TEST(BlockCacheFleet, ReplayByteIdenticalAcrossThreadCounts) {
  fleet_config cfg;
  cfg.trace.scale = 0.004;
  cfg.max_files_per_service = 25;
  cfg.trace.max_file_bytes = 256 * KiB;
  cfg.cache_tier = true;
  cfg.cache.capacity_bytes = 256 * KiB;
  cfg.cache.block_bytes = 16 * KiB;
  cfg.cache.policy = cache_eviction::arc;

  fleet_config serial = cfg;
  serial.replay_threads = 1;
  fleet_config threaded = cfg;
  threaded.replay_threads = 4;

  const auto a = replay_trace_fleet(serial);
  const auto b = replay_trace_fleet(threaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].service, b[i].service);
    EXPECT_EQ(a[i].sync_traffic, b[i].sync_traffic) << a[i].service;
    EXPECT_EQ(a[i].commits, b[i].commits) << a[i].service;
    EXPECT_EQ(a[i].update_bytes, b[i].update_bytes) << a[i].service;
    EXPECT_EQ(a[i].backend_retained_bytes, b[i].backend_retained_bytes)
        << a[i].service;
  }
}

TEST(BlockCacheConcurrent, ParallelWriteBackEnvsAreIndependent) {
  // Four identical write-back experiments on four worker threads (each env
  // owns its world; the content store and memo caches are the only shared
  // state). Run under tsan in CI; identical results prove independence.
  constexpr std::size_t kRuns = 4;
  std::vector<cache_run_result> results(kRuns);
  parallel_runner pool(4);
  pool.run_indexed(kRuns, [&](std::size_t i) {
    results[i] = run_cache_experiment(
        tier_cfg(96 * KiB, cache_eviction::arc, cache_write_mode::write_back,
                 5.0),
        cache_workload::frequent_mods, 4, 32 * KiB);
  });
  for (std::size_t i = 1; i < kRuns; ++i) {
    EXPECT_TRUE(same_meter(results[0].meter, results[i].meter)) << i;
    EXPECT_EQ(results[0].commits, results[i].commits) << i;
    EXPECT_EQ(results[0].cache.hits, results[i].cache.hits) << i;
    EXPECT_EQ(results[0].cache.dirty_marked, results[i].cache.dirty_marked)
        << i;
  }
}

// ---------------------------------------------------------------------------
// Capacity sweep invariants, in miniature (the bench runs the full grid).
// ---------------------------------------------------------------------------

TEST(BlockCacheTier, HitRatioGrowsWithCapacityUnderLru) {
  double prev = -1.0;
  for (const std::uint64_t cap : {48 * KiB, 96 * KiB, 0 * KiB}) {
    const cache_run_result r = run_cache_experiment(
        tier_cfg(cap), cache_workload::looping_scan, 6, 32 * KiB);
    EXPECT_GE(r.hit_ratio + 1e-12, prev) << "capacity " << cap;
    prev = r.hit_ratio;
  }
}

}  // namespace
}  // namespace cloudsync
