// The rsync algorithm: signatures, delta computation, patching, wire format.
#include <gtest/gtest.h>

#include "chunking/rsync.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

byte_buffer patch_roundtrip(byte_view old_data, byte_view new_data,
                            std::size_t block) {
  const file_signature sig = compute_signature(old_data, block);
  const file_delta delta = compute_delta(sig, new_data);
  return apply_delta(old_data, delta);
}

TEST(Rsync, SignatureShape) {
  rng r(1);
  const byte_buffer data = random_bytes(r, 10'240);
  const file_signature sig = compute_signature(data, 1024);
  EXPECT_EQ(sig.blocks.size(), 10u);
  EXPECT_EQ(sig.file_size, 10'240u);
  EXPECT_EQ(sig.block_size, 1024u);
  EXPECT_EQ(sig.wire_size(), 16 + 10 * 20);
}

TEST(Rsync, SignatureShortTail) {
  rng r(2);
  const byte_buffer data = random_bytes(r, 2500);
  const file_signature sig = compute_signature(data, 1024);
  EXPECT_EQ(sig.blocks.size(), 3u);
}

TEST(Rsync, IdenticalFilesAllCopies) {
  rng r(3);
  const byte_buffer data = random_bytes(r, 50'000);
  const file_signature sig = compute_signature(data, 1024);
  const file_delta delta = compute_delta(sig, data);
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_EQ(apply_delta(data, delta), data);
  // Consecutive copies merge into a single run.
  EXPECT_EQ(delta.ops.size(), 1u);
}

TEST(Rsync, SingleByteChangeShipsOneBlock) {
  rng r(4);
  byte_buffer old_data = random_bytes(r, 100 * 1024);
  byte_buffer new_data = old_data;
  new_data[50'000] ^= 0xff;

  const file_signature sig = compute_signature(old_data, 10 * 1024);
  const file_delta delta = compute_delta(sig, new_data);
  // Exactly one 10 KB block of literals, the rest copied — the paper's
  // estimate C ≈ 10 KB for Dropbox's flat modification traffic.
  EXPECT_EQ(delta.literal_bytes(), 10 * 1024u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, PrependShiftsAreResynchronised) {
  rng r(5);
  const byte_buffer old_data = random_bytes(r, 64 * 1024);
  byte_buffer new_data = random_bytes(r, 100);  // insertion at front
  append(new_data, old_data);

  const file_signature sig = compute_signature(old_data, 4096);
  const file_delta delta = compute_delta(sig, new_data);
  // The rolling match must recover alignment after the insertion: literals
  // stay near the insertion size, not the file size.
  EXPECT_LT(delta.literal_bytes(), 5000u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, AppendShipsOnlyTail) {
  rng r(6);
  const byte_buffer old_data = random_bytes(r, 40'960);
  byte_buffer new_data = old_data;
  const byte_buffer tail = random_bytes(r, 2048);
  append(new_data, tail);

  const file_signature sig = compute_signature(old_data, 4096);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(delta.literal_bytes(), 2048u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, CompletelyDifferentFilesAreAllLiterals) {
  rng r(7);
  const byte_buffer old_data = random_bytes(r, 20'000);
  const byte_buffer new_data = random_bytes(r, 21'000);
  const file_signature sig = compute_signature(old_data, 2048);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(delta.literal_bytes(), new_data.size());
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, EmptyOldFile) {
  rng r(8);
  const byte_buffer new_data = random_bytes(r, 5000);
  const file_signature sig = compute_signature({}, 1024);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(delta.literal_bytes(), 5000u);
  EXPECT_EQ(apply_delta({}, delta), new_data);
}

TEST(Rsync, EmptyNewFile) {
  rng r(9);
  const byte_buffer old_data = random_bytes(r, 5000);
  const file_signature sig = compute_signature(old_data, 1024);
  const file_delta delta = compute_delta(sig, {});
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_TRUE(apply_delta(old_data, delta).empty());
}

TEST(Rsync, ShortTailBlockMatches) {
  rng r(10);
  byte_buffer old_data = random_bytes(r, 10'000);  // tail of 10000-8192=1808
  byte_buffer new_data = old_data;
  new_data[0] ^= 1;  // change only the first block

  const file_signature sig = compute_signature(old_data, 8192);
  const file_delta delta = compute_delta(sig, new_data);
  // First 8192 shipped; final 1808-byte tail block matched by identity.
  EXPECT_EQ(delta.literal_bytes(), 8192u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, TruncationProducesValidDelta) {
  rng r(11);
  const byte_buffer old_data = random_bytes(r, 30'000);
  const byte_buffer new_data(old_data.begin(), old_data.begin() + 12'288);
  const file_signature sig = compute_signature(old_data, 4096);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

class RsyncRandomEdits : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsyncRandomEdits, RoundTripsUnderRandomEdits) {
  rng r(100 + GetParam());
  byte_buffer old_data = random_bytes(r, 60'000);
  byte_buffer new_data = old_data;
  // A handful of scattered edits: overwrite, insert, erase.
  for (int i = 0; i < 5; ++i) {
    const std::size_t pos = r.uniform(new_data.size());
    switch (r.uniform(3)) {
      case 0:
        new_data[pos] ^= 0x5a;
        break;
      case 1: {
        const byte_buffer ins = random_bytes(r, 1 + r.uniform(300));
        new_data.insert(new_data.begin() + static_cast<std::ptrdiff_t>(pos),
                        ins.begin(), ins.end());
        break;
      }
      default:
        new_data.erase(
            new_data.begin() + static_cast<std::ptrdiff_t>(pos),
            new_data.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(new_data.size(), pos + 200)));
        break;
    }
  }
  EXPECT_EQ(patch_roundtrip(old_data, new_data, GetParam() % 2 ? 2048 : 700),
            new_data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsyncRandomEdits,
                         ::testing::Range<std::size_t>(0, 12));

TEST(RsyncWire, SerializeParseRoundTrip) {
  rng r(12);
  const byte_buffer old_data = random_bytes(r, 30'000);
  byte_buffer new_data = old_data;
  new_data[15'000] ^= 0xff;
  const file_signature sig = compute_signature(old_data, 4096);
  const file_delta delta = compute_delta(sig, new_data);

  const byte_buffer wire = serialize_delta(delta);
  const file_delta parsed = parse_delta(wire);
  EXPECT_EQ(parsed.block_size, delta.block_size);
  EXPECT_EQ(parsed.new_file_size, delta.new_file_size);
  ASSERT_EQ(parsed.ops.size(), delta.ops.size());
  EXPECT_EQ(apply_delta(old_data, parsed), new_data);
}

TEST(RsyncWire, CorruptionDetected) {
  rng r(13);
  const byte_buffer old_data = random_bytes(r, 10'000);
  const file_signature sig = compute_signature(old_data, 1024);
  const file_delta delta = compute_delta(sig, old_data);
  byte_buffer wire = serialize_delta(delta);
  wire[wire.size() / 2] ^= 1;
  EXPECT_THROW(parse_delta(wire), std::runtime_error);
}

TEST(RsyncWire, TruncationDetected) {
  EXPECT_THROW(parse_delta(to_buffer("dl")), std::runtime_error);
  EXPECT_THROW(parse_delta({}), std::runtime_error);
}

TEST(RsyncWire, WireIsCompactForSmallDeltas) {
  rng r(14);
  const byte_buffer old_data = random_bytes(r, 1024 * 1024);
  byte_buffer new_data = old_data;
  new_data[500'000] ^= 1;
  const file_signature sig = compute_signature(old_data, 10 * 1024);
  const byte_buffer wire = serialize_delta(compute_delta(sig, new_data));
  // One literal block plus copy runs: ~10 KB, never the megabyte.
  EXPECT_LT(wire.size(), 12 * 1024u);
}

TEST(ApplyDelta, OutOfRangeBlockThrows) {
  file_delta delta;
  delta.block_size = 1024;
  delta.new_file_size = 1024;
  delta.ops.push_back({delta_op::kind::copy, 5, 1, {}});
  rng r(15);
  const byte_buffer old_data = random_bytes(r, 2048);
  EXPECT_THROW(apply_delta(old_data, delta), std::runtime_error);
}

TEST(ApplyDelta, SizeMismatchThrows) {
  file_delta delta;
  delta.block_size = 1024;
  delta.new_file_size = 9999;  // lies about the size
  delta.ops.push_back({delta_op::kind::literal, 0, 0, to_buffer("abc")});
  EXPECT_THROW(apply_delta({}, delta), std::runtime_error);
}

TEST(FileDelta, CopiedBytesAccounting) {
  rng r(16);
  const byte_buffer old_data = random_bytes(r, 2500);  // 2 full + 452 tail
  const file_signature sig = compute_signature(old_data, 1024);
  const file_delta delta = compute_delta(sig, old_data);
  EXPECT_EQ(delta.copied_bytes(old_data.size()), old_data.size());
}

TEST(Rsync, ZeroBlockSizeThrows) {
  // Regression: this used to be an assert that vanished under NDEBUG,
  // leaving release builds spinning forever in the signature loop.
  rng r(17);
  const byte_buffer data = random_bytes(r, 1000);
  EXPECT_THROW(compute_signature(data, 0), invalid_block_size);
  EXPECT_THROW(compute_signature_ref(content_ref::from_bytes(data), 0),
               invalid_block_size);
  EXPECT_THROW(sig_job(0), invalid_block_size);
  // invalid_block_size is a std::invalid_argument, so legacy catch sites
  // written against the standard hierarchy still work.
  EXPECT_THROW(compute_signature(data, 0), std::invalid_argument);
}

/// Build a rope with deliberately awkward segmentation so streaming jobs see
/// window boundaries that never line up with blocks.
content_ref chopped_rope(byte_view data, std::size_t first_seg) {
  content_ref::builder b;
  std::size_t off = 0;
  std::size_t seg = first_seg;
  while (off < data.size()) {
    const std::size_t len = std::min(seg, data.size() - off);
    b.append_bytes(data.subspan(off, len));
    off += len;
    seg = seg * 2 + 1;  // 7, 15, 31, ... : never a block multiple
  }
  return b.build();
}

/// Both legs of the pipeline on one (old, new, block_size) case: the
/// streaming signature/delta must equal the whole-buffer ones bit-for-bit —
/// same ops, same wire bytes, same streamed wire walk — and both patch
/// paths must reproduce the new file.
void expect_streaming_identity(const byte_buffer& old_data,
                               const byte_buffer& new_data,
                               std::size_t block_size) {
  const content_ref old_ref = chopped_rope(old_data, 7);
  const content_ref new_ref = chopped_rope(new_data, 7);

  const file_signature sig = compute_signature(old_data, block_size);
  const file_signature sig_ref = compute_signature_ref(old_ref, block_size);
  EXPECT_EQ(sig_ref.file_size, sig.file_size);
  EXPECT_EQ(sig_ref.block_size, sig.block_size);
  ASSERT_EQ(sig_ref.blocks.size(), sig.blocks.size());
  for (std::size_t i = 0; i < sig.blocks.size(); ++i) {
    EXPECT_EQ(sig_ref.blocks[i].weak, sig.blocks[i].weak) << i;
    EXPECT_EQ(sig_ref.blocks[i].strong, sig.blocks[i].strong) << i;
  }

  const file_delta delta = compute_delta(sig, new_data);
  const file_delta delta_ref = compute_delta_ref(sig_ref, new_ref, 1000);
  ASSERT_EQ(delta_ref.ops.size(), delta.ops.size());
  for (std::size_t i = 0; i < delta.ops.size(); ++i) {
    EXPECT_EQ(delta_ref.ops[i].op, delta.ops[i].op) << i;
    EXPECT_EQ(delta_ref.ops[i].block_index, delta.ops[i].block_index) << i;
    EXPECT_EQ(delta_ref.ops[i].block_count, delta.ops[i].block_count) << i;
    EXPECT_EQ(delta_ref.ops[i].literal_size(), delta.ops[i].literal_size())
        << i;
  }

  const byte_buffer wire = serialize_delta(delta);
  EXPECT_EQ(serialize_delta(delta_ref), wire);
  EXPECT_EQ(delta_wire_size(delta_ref), wire.size());
  byte_buffer walked;
  walk_delta_wire(delta_ref, [&](byte_view v) { append(walked, v); });
  EXPECT_EQ(walked, wire);

  EXPECT_EQ(apply_delta(old_data, delta_ref), new_data);
  const content_ref patched = apply_delta_ref(old_ref, delta_ref);
  EXPECT_TRUE(patched.equal(new_data));
}

TEST(RsyncStreaming, EdgeCasesMatchWholeBufferPath) {
  rng r(18);
  const byte_buffer base = random_bytes(r, 10'000);
  auto prefix = [&](std::size_t n) {
    return byte_buffer(base.begin(), base.begin() + n);
  };
  byte_buffer edited = base;
  edited[4'000] ^= 0xff;

  // Empty old, empty new, new smaller than one block, exact block multiple,
  // single short old block, and a plain edit — per the streaming rework's
  // boundary rules, each resolves in a different place (feed vs finish).
  expect_streaming_identity({}, base, 1024);           // empty old file
  expect_streaming_identity(base, {}, 1024);           // empty new file
  expect_streaming_identity(base, prefix(700), 1024);  // new < one block
  expect_streaming_identity(prefix(4096), edited, 1024);  // exact multiple
  expect_streaming_identity(prefix(300), base, 1024);  // one short old block
  expect_streaming_identity(base, edited, 1024);       // plain edit
  expect_streaming_identity(base, base, 1024);         // identical files
}

TEST(RsyncStreaming, RandomWindowSplitsDoNotChangeResults) {
  // Feed the same inputs through sig_job/delta_job with random window
  // splits: results must be independent of how the input is windowed.
  rng r(19);
  const byte_buffer old_data = random_bytes(r, 50'000);
  byte_buffer new_data = old_data;
  for (int i = 0; i < 4; ++i) new_data[r.uniform(new_data.size())] ^= 0x5a;
  const byte_buffer ins = random_bytes(r, 333);
  new_data.insert(new_data.begin() + 20'000, ins.begin(), ins.end());

  const file_signature want_sig = compute_signature(old_data, 4096);
  const file_delta want_delta = compute_delta(want_sig, new_data);
  const byte_buffer want_wire = serialize_delta(want_delta);

  for (int trial = 0; trial < 8; ++trial) {
    sig_job sj(4096);
    for (std::size_t off = 0; off < old_data.size();) {
      const std::size_t len =
          std::min<std::size_t>(1 + r.uniform(9000), old_data.size() - off);
      sj.feed(byte_view(old_data).subspan(off, len));
      off += len;
    }
    const file_signature sig = sj.finish();
    ASSERT_EQ(sig.blocks.size(), want_sig.blocks.size()) << trial;
    for (std::size_t i = 0; i < sig.blocks.size(); ++i) {
      EXPECT_EQ(sig.blocks[i].weak, want_sig.blocks[i].weak) << trial;
      EXPECT_EQ(sig.blocks[i].strong, want_sig.blocks[i].strong) << trial;
    }

    delta_job dj(sig);
    for (std::size_t off = 0; off < new_data.size();) {
      const std::size_t len =
          std::min<std::size_t>(1 + r.uniform(9000), new_data.size() - off);
      dj.feed(byte_view(new_data).subspan(off, len));
      off += len;
    }
    const file_delta delta = delta_from_events(
        4096, content_ref::from_bytes(new_data), dj.finish());
    EXPECT_EQ(serialize_delta(delta), want_wire) << trial;
  }
}

TEST(RsyncStreaming, PatchJobSharesOldChunks) {
  rng r(20);
  const byte_buffer old_data = random_bytes(r, 200'000);
  byte_buffer new_data = old_data;
  new_data[100'000] ^= 1;
  const content_ref old_ref = content_ref::from_bytes(old_data);
  const file_signature sig = compute_signature_ref(old_ref, 8192);
  const file_delta delta =
      compute_delta_ref(sig, content_ref::from_bytes(new_data));

  patch_job pj(old_ref, delta.block_size, delta.new_file_size);
  for (const delta_op& op : delta.ops) pj.feed(op);
  const content_ref rebuilt = pj.finish();
  EXPECT_TRUE(rebuilt.equal(new_data));
}

}  // namespace
}  // namespace cloudsync
