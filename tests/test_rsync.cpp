// The rsync algorithm: signatures, delta computation, patching, wire format.
#include <gtest/gtest.h>

#include "chunking/rsync.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

byte_buffer patch_roundtrip(byte_view old_data, byte_view new_data,
                            std::size_t block) {
  const file_signature sig = compute_signature(old_data, block);
  const file_delta delta = compute_delta(sig, new_data);
  return apply_delta(old_data, delta);
}

TEST(Rsync, SignatureShape) {
  rng r(1);
  const byte_buffer data = random_bytes(r, 10'240);
  const file_signature sig = compute_signature(data, 1024);
  EXPECT_EQ(sig.blocks.size(), 10u);
  EXPECT_EQ(sig.file_size, 10'240u);
  EXPECT_EQ(sig.block_size, 1024u);
  EXPECT_EQ(sig.wire_size(), 16 + 10 * 20);
}

TEST(Rsync, SignatureShortTail) {
  rng r(2);
  const byte_buffer data = random_bytes(r, 2500);
  const file_signature sig = compute_signature(data, 1024);
  EXPECT_EQ(sig.blocks.size(), 3u);
}

TEST(Rsync, IdenticalFilesAllCopies) {
  rng r(3);
  const byte_buffer data = random_bytes(r, 50'000);
  const file_signature sig = compute_signature(data, 1024);
  const file_delta delta = compute_delta(sig, data);
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_EQ(apply_delta(data, delta), data);
  // Consecutive copies merge into a single run.
  EXPECT_EQ(delta.ops.size(), 1u);
}

TEST(Rsync, SingleByteChangeShipsOneBlock) {
  rng r(4);
  byte_buffer old_data = random_bytes(r, 100 * 1024);
  byte_buffer new_data = old_data;
  new_data[50'000] ^= 0xff;

  const file_signature sig = compute_signature(old_data, 10 * 1024);
  const file_delta delta = compute_delta(sig, new_data);
  // Exactly one 10 KB block of literals, the rest copied — the paper's
  // estimate C ≈ 10 KB for Dropbox's flat modification traffic.
  EXPECT_EQ(delta.literal_bytes(), 10 * 1024u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, PrependShiftsAreResynchronised) {
  rng r(5);
  const byte_buffer old_data = random_bytes(r, 64 * 1024);
  byte_buffer new_data = random_bytes(r, 100);  // insertion at front
  append(new_data, old_data);

  const file_signature sig = compute_signature(old_data, 4096);
  const file_delta delta = compute_delta(sig, new_data);
  // The rolling match must recover alignment after the insertion: literals
  // stay near the insertion size, not the file size.
  EXPECT_LT(delta.literal_bytes(), 5000u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, AppendShipsOnlyTail) {
  rng r(6);
  const byte_buffer old_data = random_bytes(r, 40'960);
  byte_buffer new_data = old_data;
  const byte_buffer tail = random_bytes(r, 2048);
  append(new_data, tail);

  const file_signature sig = compute_signature(old_data, 4096);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(delta.literal_bytes(), 2048u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, CompletelyDifferentFilesAreAllLiterals) {
  rng r(7);
  const byte_buffer old_data = random_bytes(r, 20'000);
  const byte_buffer new_data = random_bytes(r, 21'000);
  const file_signature sig = compute_signature(old_data, 2048);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(delta.literal_bytes(), new_data.size());
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, EmptyOldFile) {
  rng r(8);
  const byte_buffer new_data = random_bytes(r, 5000);
  const file_signature sig = compute_signature({}, 1024);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(delta.literal_bytes(), 5000u);
  EXPECT_EQ(apply_delta({}, delta), new_data);
}

TEST(Rsync, EmptyNewFile) {
  rng r(9);
  const byte_buffer old_data = random_bytes(r, 5000);
  const file_signature sig = compute_signature(old_data, 1024);
  const file_delta delta = compute_delta(sig, {});
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_TRUE(apply_delta(old_data, delta).empty());
}

TEST(Rsync, ShortTailBlockMatches) {
  rng r(10);
  byte_buffer old_data = random_bytes(r, 10'000);  // tail of 10000-8192=1808
  byte_buffer new_data = old_data;
  new_data[0] ^= 1;  // change only the first block

  const file_signature sig = compute_signature(old_data, 8192);
  const file_delta delta = compute_delta(sig, new_data);
  // First 8192 shipped; final 1808-byte tail block matched by identity.
  EXPECT_EQ(delta.literal_bytes(), 8192u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

TEST(Rsync, TruncationProducesValidDelta) {
  rng r(11);
  const byte_buffer old_data = random_bytes(r, 30'000);
  const byte_buffer new_data(old_data.begin(), old_data.begin() + 12'288);
  const file_signature sig = compute_signature(old_data, 4096);
  const file_delta delta = compute_delta(sig, new_data);
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_EQ(apply_delta(old_data, delta), new_data);
}

class RsyncRandomEdits : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsyncRandomEdits, RoundTripsUnderRandomEdits) {
  rng r(100 + GetParam());
  byte_buffer old_data = random_bytes(r, 60'000);
  byte_buffer new_data = old_data;
  // A handful of scattered edits: overwrite, insert, erase.
  for (int i = 0; i < 5; ++i) {
    const std::size_t pos = r.uniform(new_data.size());
    switch (r.uniform(3)) {
      case 0:
        new_data[pos] ^= 0x5a;
        break;
      case 1: {
        const byte_buffer ins = random_bytes(r, 1 + r.uniform(300));
        new_data.insert(new_data.begin() + static_cast<std::ptrdiff_t>(pos),
                        ins.begin(), ins.end());
        break;
      }
      default:
        new_data.erase(
            new_data.begin() + static_cast<std::ptrdiff_t>(pos),
            new_data.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(new_data.size(), pos + 200)));
        break;
    }
  }
  EXPECT_EQ(patch_roundtrip(old_data, new_data, GetParam() % 2 ? 2048 : 700),
            new_data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsyncRandomEdits,
                         ::testing::Range<std::size_t>(0, 12));

TEST(RsyncWire, SerializeParseRoundTrip) {
  rng r(12);
  const byte_buffer old_data = random_bytes(r, 30'000);
  byte_buffer new_data = old_data;
  new_data[15'000] ^= 0xff;
  const file_signature sig = compute_signature(old_data, 4096);
  const file_delta delta = compute_delta(sig, new_data);

  const byte_buffer wire = serialize_delta(delta);
  const file_delta parsed = parse_delta(wire);
  EXPECT_EQ(parsed.block_size, delta.block_size);
  EXPECT_EQ(parsed.new_file_size, delta.new_file_size);
  ASSERT_EQ(parsed.ops.size(), delta.ops.size());
  EXPECT_EQ(apply_delta(old_data, parsed), new_data);
}

TEST(RsyncWire, CorruptionDetected) {
  rng r(13);
  const byte_buffer old_data = random_bytes(r, 10'000);
  const file_signature sig = compute_signature(old_data, 1024);
  const file_delta delta = compute_delta(sig, old_data);
  byte_buffer wire = serialize_delta(delta);
  wire[wire.size() / 2] ^= 1;
  EXPECT_THROW(parse_delta(wire), std::runtime_error);
}

TEST(RsyncWire, TruncationDetected) {
  EXPECT_THROW(parse_delta(to_buffer("dl")), std::runtime_error);
  EXPECT_THROW(parse_delta({}), std::runtime_error);
}

TEST(RsyncWire, WireIsCompactForSmallDeltas) {
  rng r(14);
  const byte_buffer old_data = random_bytes(r, 1024 * 1024);
  byte_buffer new_data = old_data;
  new_data[500'000] ^= 1;
  const file_signature sig = compute_signature(old_data, 10 * 1024);
  const byte_buffer wire = serialize_delta(compute_delta(sig, new_data));
  // One literal block plus copy runs: ~10 KB, never the megabyte.
  EXPECT_LT(wire.size(), 12 * 1024u);
}

TEST(ApplyDelta, OutOfRangeBlockThrows) {
  file_delta delta;
  delta.block_size = 1024;
  delta.new_file_size = 1024;
  delta.ops.push_back({delta_op::kind::copy, 5, 1, {}});
  rng r(15);
  const byte_buffer old_data = random_bytes(r, 2048);
  EXPECT_THROW(apply_delta(old_data, delta), std::runtime_error);
}

TEST(ApplyDelta, SizeMismatchThrows) {
  file_delta delta;
  delta.block_size = 1024;
  delta.new_file_size = 9999;  // lies about the size
  delta.ops.push_back({delta_op::kind::literal, 0, 0, to_buffer("abc")});
  EXPECT_THROW(apply_delta({}, delta), std::runtime_error);
}

TEST(FileDelta, CopiedBytesAccounting) {
  rng r(16);
  const byte_buffer old_data = random_bytes(r, 2500);  // 2 full + 452 tail
  const file_signature sig = compute_signature(old_data, 1024);
  const file_delta delta = compute_delta(sig, old_data);
  EXPECT_EQ(delta.copied_bytes(old_data.size()), old_data.size());
}

}  // namespace
}  // namespace cloudsync
