// Known-answer and property tests for the from-scratch hash primitives.
#include <gtest/gtest.h>

#include "util/crc32.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/sha1.hpp"
#include "util/sha256.hpp"

namespace cloudsync {
namespace {

// --- MD5 (RFC 1321 test suite) -------------------------------------------

struct md5_vector {
  const char* input;
  const char* digest;
};

class Md5KnownAnswers : public ::testing::TestWithParam<md5_vector> {};

TEST_P(Md5KnownAnswers, MatchesRfc1321) {
  const auto& [input, digest] = GetParam();
  EXPECT_EQ(md5(as_bytes(input)).hex(), digest);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5KnownAnswers,
    ::testing::Values(
        md5_vector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        md5_vector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        md5_vector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        md5_vector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        md5_vector{"abcdefghijklmnopqrstuvwxyz",
                   "c3fcd3d76192e4007dfb496cca67e13b"},
        md5_vector{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01234"
                   "56789",
                   "d174ab98d277d9f5a5611c2c9f419d9f"},
        md5_vector{"1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890",
                   "57edf4a22be3c955ac49da2e2107b67a"}));

// --- SHA-1 (FIPS 180 examples) --------------------------------------------

TEST(Sha1, KnownAnswers) {
  EXPECT_EQ(sha1(as_bytes("")).hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1(as_bytes("abc")).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1(as_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomno"
                          "pnopq"))
                .hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

// --- SHA-256 (FIPS 180 examples) -------------------------------------------

TEST(Sha256, KnownAnswers) {
  EXPECT_EQ(sha256(as_bytes("")).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256(as_bytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256(as_bytes(
                 "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

// --- CRC-32 ------------------------------------------------------------------

TEST(Crc32, KnownAnswers) {
  EXPECT_EQ(crc32(as_bytes("")), 0u);
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32(as_bytes("The quick brown fox jumps over the lazy dog")),
            0x414fa339u);
}

TEST(Crc32, SeedContinuation) {
  const std::string s = "hello world, this is a split crc test";
  const auto mid = s.size() / 2;
  const std::uint32_t whole = crc32(as_bytes(s));
  const std::uint32_t part1 = crc32(as_bytes(std::string_view(s).substr(0, mid)));
  const std::uint32_t split =
      crc32(as_bytes(std::string_view(s).substr(mid)), part1);
  EXPECT_EQ(whole, split);
}

// --- incremental == one-shot property across chunkings ----------------------

class IncrementalHashing : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IncrementalHashing, Md5ChunkedEqualsOneShot) {
  rng r(7);
  const byte_buffer data = random_bytes(r, 10'000);
  const std::size_t chunk = GetParam();
  md5_hasher h;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    h.update(byte_view{data}.subspan(off, std::min(chunk, data.size() - off)));
  }
  EXPECT_EQ(h.finish(), md5(data));
}

TEST_P(IncrementalHashing, Sha1ChunkedEqualsOneShot) {
  rng r(8);
  const byte_buffer data = random_bytes(r, 10'000);
  const std::size_t chunk = GetParam();
  sha1_hasher h;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    h.update(byte_view{data}.subspan(off, std::min(chunk, data.size() - off)));
  }
  EXPECT_EQ(h.finish(), sha1(data));
}

TEST_P(IncrementalHashing, Sha256ChunkedEqualsOneShot) {
  rng r(9);
  const byte_buffer data = random_bytes(r, 10'000);
  const std::size_t chunk = GetParam();
  sha256_hasher h;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    h.update(byte_view{data}.subspan(off, std::min(chunk, data.size() - off)));
  }
  EXPECT_EQ(h.finish(), sha256(data));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, IncrementalHashing,
                         ::testing::Values(1, 3, 63, 64, 65, 127, 1000, 4096));

// --- boundary lengths around the 64-byte block ------------------------------

class HashBlockBoundaries : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashBlockBoundaries, AllThreeHashesAreLengthSensitive) {
  rng r(10);
  const byte_buffer a = random_bytes(r, GetParam());
  byte_buffer b = a;
  if (!b.empty()) {
    b.back() ^= 1;
    EXPECT_NE(md5(a), md5(b));
    EXPECT_NE(sha1(a), sha1(b));
    EXPECT_NE(sha256(a), sha256(b));
  }
  // Appending a byte always changes the digest.
  byte_buffer c = a;
  c.push_back(0);
  EXPECT_NE(md5(a), md5(c));
  EXPECT_NE(sha1(a), sha1(c));
  EXPECT_NE(sha256(a), sha256(c));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, HashBlockBoundaries,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 128, 1000));

TEST(Digest, Prefix64IsStable) {
  const md5_digest d = md5(as_bytes("abc"));
  EXPECT_EQ(d.prefix64(), 0x900150983cd24fb0ull);
}

TEST(Digest, Ordering) {
  const md5_digest a = md5(as_bytes("a"));
  const md5_digest b = md5(as_bytes("b"));
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) != (b < a));
}

}  // namespace
}  // namespace cloudsync
