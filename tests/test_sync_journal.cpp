// The write-ahead sync journal: record lifecycle enforcement, supersede-on-
// retry semantics, checkpointing, the durable per-path commit counters the
// invariant checker relies on, and the human-readable dump.
#include <gtest/gtest.h>

#include <stdexcept>

#include "client/sync_journal.hpp"

namespace cloudsync {
namespace {

std::uint64_t begin_upload(sync_journal& j, const std::string& path,
                           std::uint32_t chunks = 4) {
  return j.begin(path, journal_kind::upload_full,
                 /*payload_bytes=*/chunks * 1000ull, chunks,
                 /*base_version=*/0, /*content_hash=*/0xabcd,
                 sim_time::from_sec(1));
}

TEST(SyncJournal, HappyPathLifecycle) {
  sync_journal j;
  EXPECT_TRUE(j.empty());

  const std::uint64_t id = begin_upload(j, "a/file");
  const journal_record* rec = j.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, journal_state::planned);
  EXPECT_EQ(rec->path, "a/file");
  EXPECT_EQ(rec->total_chunks, 4u);
  EXPECT_EQ(rec->acked_chunks, 0u);
  EXPECT_EQ(rec->resume_token, 0u);

  j.set_resume_token(id, 77);
  j.mark_in_flight(id);
  EXPECT_EQ(j.find(id)->state, journal_state::in_flight);
  EXPECT_EQ(j.find(id)->resume_token, 77u);

  for (std::uint32_t i = 0; i < 4; ++i) j.ack_chunk(id, i);
  EXPECT_EQ(j.find(id)->acked_chunks, 4u);

  j.commit(id);
  EXPECT_EQ(j.find(id)->state, journal_state::committed);
  EXPECT_EQ(j.begun_count(), 1u);
  EXPECT_EQ(j.committed_count(), 1u);
  EXPECT_EQ(j.aborted_count(), 0u);
  EXPECT_EQ(j.commits_for("a/file"), 1u);
  EXPECT_TRUE(j.open_records().empty());
}

TEST(SyncJournal, InvalidTransitionsThrow) {
  sync_journal j;
  const std::uint64_t id = begin_upload(j, "p");

  // A planned record has no acked chunks and cannot commit or ack.
  EXPECT_THROW(j.ack_chunk(id, 0), std::logic_error);
  EXPECT_THROW(j.commit(id), std::logic_error);

  j.mark_in_flight(id);
  // Chunk acks may land out of order (striped transfers): the contiguous
  // prefix lags until the hole closes, the total counts every ack.
  j.ack_chunk(id, 1);
  EXPECT_EQ(j.find(id)->acked_chunks, 0u);
  EXPECT_EQ(j.find(id)->acked_total, 1u);
  EXPECT_TRUE(j.find(id)->chunk_acked(1));
  EXPECT_FALSE(j.find(id)->chunk_acked(0));
  EXPECT_THROW(j.ack_chunk(id, 1), std::logic_error);  // replay
  j.ack_chunk(id, 0);
  EXPECT_THROW(j.ack_chunk(id, 0), std::logic_error);  // replay
  j.mark_in_flight(id);  // idempotent while still in flight
  EXPECT_EQ(j.find(id)->acked_chunks, 2u);
  EXPECT_EQ(j.find(id)->acked_total, 2u);

  j.commit(id);
  EXPECT_THROW(j.abort(id, "too late"), std::logic_error);
  EXPECT_THROW(j.commit(id), std::logic_error);

  // Unknown ids are client bugs.
  EXPECT_THROW(j.mark_in_flight(999), std::logic_error);
  EXPECT_THROW(j.commit(999), std::logic_error);
}

TEST(SyncJournal, AbortFromPlannedAndInFlight) {
  sync_journal j;
  const std::uint64_t a = begin_upload(j, "a");
  j.abort(a, "session open failed");
  EXPECT_EQ(j.find(a)->state, journal_state::aborted);
  EXPECT_EQ(j.find(a)->note, "session open failed");

  const std::uint64_t b = begin_upload(j, "b");
  j.mark_in_flight(b);
  j.abort(b, "retry budget exhausted");
  EXPECT_EQ(j.find(b)->state, journal_state::aborted);
  EXPECT_EQ(j.aborted_count(), 2u);
  // Aborted records stay open (visible to recovery) until superseded.
  EXPECT_EQ(j.open_records().size(), 2u);
}

TEST(SyncJournal, RetrySupersedesAbortedRecordForSamePath) {
  sync_journal j;
  const std::uint64_t a = begin_upload(j, "p");
  j.abort(a, "gave up");
  ASSERT_EQ(j.size(), 1u);

  // The re-attempt replaces the aborted record; other paths are untouched.
  const std::uint64_t other = begin_upload(j, "q");
  const std::uint64_t b = begin_upload(j, "p");
  EXPECT_EQ(j.find(a), nullptr);
  ASSERT_NE(j.find(b), nullptr);
  ASSERT_NE(j.find(other), nullptr);
  EXPECT_EQ(j.size(), 2u);
  // The durable abort counter still remembers the failure.
  EXPECT_EQ(j.aborted_count(), 1u);
  EXPECT_EQ(j.begun_count(), 3u);
}

TEST(SyncJournal, CheckpointDropsOnlyCommittedRecords) {
  sync_journal j;
  const std::uint64_t done = begin_upload(j, "done", 1);
  j.mark_in_flight(done);
  j.ack_chunk(done, 0);
  j.commit(done);
  const std::uint64_t live = begin_upload(j, "live");
  j.mark_in_flight(live);
  const std::uint64_t dead = begin_upload(j, "dead");
  j.abort(dead, "x");

  EXPECT_EQ(j.checkpoint(), 1u);
  EXPECT_EQ(j.find(done), nullptr);
  ASSERT_NE(j.find(live), nullptr);
  ASSERT_NE(j.find(dead), nullptr);

  // Counters and per-path commit history survive the checkpoint.
  EXPECT_EQ(j.committed_count(), 1u);
  EXPECT_EQ(j.commits_for("done"), 1u);
  EXPECT_EQ(j.checkpoint(), 0u);
}

TEST(SyncJournal, CommitsForAccumulatesAcrossTransactions) {
  sync_journal j;
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t id = begin_upload(j, "p", 1);
    j.mark_in_flight(id);
    j.ack_chunk(id, 0);
    j.commit(id);
    j.checkpoint();
  }
  EXPECT_EQ(j.commits_for("p"), 3u);
  EXPECT_EQ(j.commits_for("never-seen"), 0u);
}

TEST(SyncJournal, OpenRecordsInIdOrder) {
  sync_journal j;
  const std::uint64_t a = begin_upload(j, "a");
  const std::uint64_t b = begin_upload(j, "b");
  const std::uint64_t c = begin_upload(j, "c");
  j.mark_in_flight(b);
  j.commit(b);  // committed records are not "open"

  const auto open = j.open_records();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(open[0].id, a);
  EXPECT_EQ(open[1].id, c);
}

TEST(SyncJournal, EraseResolvesARecord) {
  sync_journal j;
  const std::uint64_t id = begin_upload(j, "p");
  j.erase(id);
  EXPECT_EQ(j.find(id), nullptr);
  EXPECT_TRUE(j.empty());
  // Erase of an unknown id is a recovery-idempotence convenience.
  j.erase(id);
}

TEST(SyncJournal, DumpShowsRecordsAndCounters) {
  sync_journal j;
  const std::uint64_t id = begin_upload(j, "docs/report.txt");
  j.set_resume_token(id, 42);
  j.mark_in_flight(id);
  j.ack_chunk(id, 0);

  const std::string text = j.dump();
  EXPECT_NE(text.find("docs/report.txt"), std::string::npos);
  EXPECT_NE(text.find("in-flight"), std::string::npos);
  EXPECT_NE(text.find("1/4"), std::string::npos);  // chunk progress
  EXPECT_NE(text.find("42"), std::string::npos);   // resume token
  EXPECT_NE(text.find("begun: 1"), std::string::npos);
}

TEST(SyncJournal, TraceRecordsTransitionsWhenEnabled) {
  sync_journal j;
  j.set_trace(true);
  const std::uint64_t id = begin_upload(j, "p", 1);
  j.mark_in_flight(id);
  j.ack_chunk(id, 0);
  j.commit(id);
  ASSERT_GE(j.trace().size(), 4u);
  // Untraced journals stay allocation-free.
  sync_journal quiet;
  begin_upload(quiet, "p");
  EXPECT_TRUE(quiet.trace().empty());
}

}  // namespace
}  // namespace cloudsync
