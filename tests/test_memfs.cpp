#include "fs/memfs.hpp"

#include <gtest/gtest.h>

#include "fs/file_ops.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

sim_time at(double sec) { return sim_time::from_sec(sec); }

TEST(Memfs, CreateReadDelete) {
  memfs fs;
  fs.create("a.txt", to_buffer("hello"), at(1));
  EXPECT_TRUE(fs.exists("a.txt"));
  EXPECT_EQ(to_string(fs.read("a.txt")), "hello");
  EXPECT_EQ(fs.size("a.txt"), 5u);
  EXPECT_EQ(fs.mtime("a.txt"), at(1));
  EXPECT_EQ(fs.version("a.txt"), 1u);
  fs.remove("a.txt", at(2));
  EXPECT_FALSE(fs.exists("a.txt"));
}

TEST(Memfs, CreateDuplicateThrows) {
  memfs fs;
  fs.create("a", byte_buffer{}, at(1));
  EXPECT_THROW(fs.create("a", byte_buffer{}, at(2)), std::invalid_argument);
}

TEST(Memfs, MissingFileThrows) {
  memfs fs;
  EXPECT_THROW(fs.read("nope"), std::invalid_argument);
  EXPECT_THROW(fs.remove("nope", at(1)), std::invalid_argument);
  EXPECT_THROW(fs.append("nope", as_bytes("x"), at(1)),
               std::invalid_argument);
}

TEST(Memfs, WriteReplacesAndBumpsVersion) {
  memfs fs;
  fs.create("a", to_buffer("one"), at(1));
  fs.write("a", to_buffer("twotwo"), at(2));
  EXPECT_EQ(to_string(fs.read("a")), "twotwo");
  EXPECT_EQ(fs.version("a"), 2u);
  EXPECT_EQ(fs.mtime("a"), at(2));
}

TEST(Memfs, AppendGrows) {
  memfs fs;
  fs.create("a", to_buffer("ab"), at(1));
  fs.append("a", as_bytes("cd"), at(2));
  EXPECT_EQ(to_string(fs.read("a")), "abcd");
}

TEST(Memfs, PatchInPlace) {
  memfs fs;
  fs.create("a", to_buffer("abcdef"), at(1));
  fs.patch("a", 2, as_bytes("XY"), at(2));
  EXPECT_EQ(to_string(fs.read("a")), "abXYef");
}

TEST(Memfs, PatchBeyondEndThrows) {
  memfs fs;
  fs.create("a", to_buffer("abc"), at(1));
  EXPECT_THROW(fs.patch("a", 2, as_bytes("toolong"), at(2)),
               std::out_of_range);
}

TEST(Memfs, Rename) {
  memfs fs;
  fs.create("old", to_buffer("data"), at(1));
  fs.rename("old", "new", at(2));
  EXPECT_FALSE(fs.exists("old"));
  EXPECT_EQ(to_string(fs.read("new")), "data");
}

TEST(Memfs, RenameOntoExistingThrows) {
  memfs fs;
  fs.create("a", byte_buffer{}, at(1));
  fs.create("b", byte_buffer{}, at(1));
  EXPECT_THROW(fs.rename("a", "b", at(2)), std::invalid_argument);
}

TEST(Memfs, ListAndTotals) {
  memfs fs;
  fs.create("b", to_buffer("22"), at(1));
  fs.create("a", to_buffer("1"), at(1));
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(fs.file_count(), 2u);
  EXPECT_EQ(fs.total_bytes(), 3u);
}

TEST(Memfs, ListCacheFollowsPathSetChanges) {
  // list() is served from a sorted snapshot invalidated only by path-set
  // changes (create/remove/rename); content writes must not stale it.
  memfs fs;
  fs.create("c", to_buffer("1"), at(1));
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"c"}));
  fs.write("c", to_buffer("rewritten"), at(2));  // cache stays valid
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"c"}));
  fs.create("a", to_buffer("2"), at(3));
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"a", "c"}));
  fs.rename("c", "b", at(4));
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"a", "b"}));
  fs.remove("a", at(5));
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"b"}));
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"b"}));  // cached hit
}

TEST(Memfs, ObserverSeesAllEvents) {
  memfs fs;
  std::vector<fs_event> events;
  fs.subscribe([&](const fs_event& e) { events.push_back(e); });

  fs.create("a", to_buffer("x"), at(1));
  fs.append("a", as_bytes("y"), at(2));
  fs.patch("a", 0, as_bytes("z"), at(3));
  fs.rename("a", "b", at(4));
  fs.remove("b", at(5));

  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].op, fs_event::kind::created);
  EXPECT_EQ(events[0].size_after, 1u);
  EXPECT_EQ(events[1].op, fs_event::kind::modified);
  EXPECT_EQ(events[1].size_after, 2u);
  EXPECT_EQ(events[2].op, fs_event::kind::modified);
  EXPECT_EQ(events[3].op, fs_event::kind::renamed);
  EXPECT_EQ(events[3].path, "b");
  EXPECT_EQ(events[3].old_path, "a");
  EXPECT_EQ(events[4].op, fs_event::kind::removed);
  EXPECT_EQ(events[4].size_after, 0u);
}

TEST(Memfs, MultipleObservers) {
  memfs fs;
  int count1 = 0, count2 = 0;
  fs.subscribe([&](const fs_event&) { ++count1; });
  fs.subscribe([&](const fs_event&) { ++count2; });
  fs.create("a", byte_buffer{}, at(1));
  EXPECT_EQ(count1, 1);
  EXPECT_EQ(count2, 1);
}

TEST(FsEventKind, Names) {
  EXPECT_STREQ(to_string(fs_event::kind::created), "created");
  EXPECT_STREQ(to_string(fs_event::kind::removed), "removed");
}

TEST(FileOps, MakeCompressedFileIsIncompressibleSize) {
  rng r(1);
  EXPECT_EQ(make_compressed_file(r, 1000).size(), 1000u);
  EXPECT_EQ(make_text_file(r, 1000).size(), 1000u);
}

TEST(FileOps, ModifyRandomByteActuallyChanges) {
  memfs fs;
  rng r(2);
  fs.create("f", make_compressed_file(r, 100), at(1));
  const byte_buffer before = fs.read("f").flatten();
  const std::size_t off = modify_random_byte(fs, "f", r, at(2));
  const byte_buffer after = fs.read("f").flatten();
  EXPECT_NE(after[off], before[off]);
  // Exactly one byte differs.
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < before.size(); ++i) diffs += after[i] != before[i];
  EXPECT_EQ(diffs, 1u);
}

TEST(FileOps, ModifyEmptyFileThrows) {
  memfs fs;
  rng r(3);
  fs.create("f", byte_buffer{}, at(1));
  EXPECT_THROW(modify_random_byte(fs, "f", r, at(2)), std::invalid_argument);
}

TEST(FileOps, AppendRandom) {
  memfs fs;
  rng r(4);
  fs.create("f", byte_buffer{}, at(1));
  append_random(fs, "f", r, 1024, at(2));
  append_random(fs, "f", r, 1024, at(3));
  EXPECT_EQ(fs.size("f"), 2048u);
}

TEST(FileOps, SelfDuplicate) {
  const byte_buffer f1 = to_buffer("abc");
  const byte_buffer f2 = self_duplicate(f1);
  EXPECT_EQ(to_string(byte_view{f2}), "abcabc");
}

}  // namespace
}  // namespace cloudsync
