#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace cloudsync {
namespace {

TEST(Bytes, HexRoundTrip) {
  const byte_buffer data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001abcdefff");
  EXPECT_EQ(from_hex("0001abcdefff"), data);
}

TEST(Bytes, HexAcceptsUppercase) {
  EXPECT_EQ(from_hex("ABCDEF"), from_hex("abcdef"));
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, StringConversions) {
  const std::string s = "hello";
  const byte_buffer b = to_buffer(s);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(byte_view{b}), s);
}

TEST(Bytes, AppendConcatenates) {
  byte_buffer a = to_buffer("foo");
  append(a, as_bytes("bar"));
  EXPECT_EQ(to_string(byte_view{a}), "foobar");
}

TEST(Units, Literals) {
  using namespace literals;
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024), "1.50 MB");
}

TEST(Units, MbpsConversion) {
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(8.0), 1'000'000.0);
}

}  // namespace
}  // namespace cloudsync
