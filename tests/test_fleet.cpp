// Fleet replay: the macro-level pipeline over the synthetic trace.
#include <gtest/gtest.h>

#include "core/fleet.hpp"

namespace cloudsync {
namespace {

fleet_config small_config() {
  fleet_config cfg;
  cfg.trace.scale = 0.004;  // ~900 files generated
  cfg.max_files_per_service = 40;
  cfg.trace.max_file_bytes = 512 * KiB;
  return cfg;
}

TEST(Fleet, ReportsAllSixServices) {
  const auto reports = replay_trace_fleet(small_config());
  ASSERT_EQ(reports.size(), 6u);
  EXPECT_EQ(reports[0].service, "Google Drive");
  EXPECT_EQ(reports[2].service, "Dropbox");
  for (const fleet_service_report& r : reports) {
    EXPECT_GT(r.files, 0u) << r.service;
    EXPECT_GT(r.users, 0u) << r.service;
    EXPECT_GT(r.update_bytes, 0u) << r.service;
    EXPECT_GT(r.sync_traffic, 0u) << r.service;
    EXPECT_GT(r.commits, 0u) << r.service;
    // Compression + dedup can push TUE below 1 (traffic < raw update size),
    // but never implausibly far.
    EXPECT_GE(r.tue(), 0.5) << r.service;
  }
}

TEST(Fleet, Deterministic) {
  const auto a = replay_trace_fleet(small_config());
  const auto b = replay_trace_fleet(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sync_traffic, b[i].sync_traffic) << a[i].service;
    EXPECT_EQ(a[i].commits, b[i].commits) << a[i].service;
  }
}

TEST(Fleet, CostFollowsTraffic) {
  const auto reports = replay_trace_fleet(small_config());
  for (const fleet_service_report& r : reports) {
    if (r.sync_traffic > 100 * MiB) {
      EXPECT_GT(r.bill.total_usd(), 0.0) << r.service;
    }
    EXPECT_GE(r.bill.total_usd(), 0.0) << r.service;
  }
}

TEST(Fleet, CapsRespected) {
  fleet_config cfg = small_config();
  cfg.max_files_per_service = 10;
  const auto reports = replay_trace_fleet(cfg);
  for (const fleet_service_report& r : reports) {
    EXPECT_LE(r.files, 10u) << r.service;
  }
}

TEST(Fleet, FileSizeCapIsIgnored) {
  // The deprecated replay-time clamp is removed: setting file_size_cap must
  // change nothing. Bounding sizes is trace.max_file_bytes' job (clamping
  // at generation keeps trace identities consistent).
  fleet_config capped = small_config();
  capped.trace.max_file_bytes = 1 * MiB;
  capped.max_files_per_service = 10;
  fleet_config uncapped = capped;
  capped.file_size_cap = 4 * KiB;
  const auto a = replay_trace_fleet(capped);
  const auto b = replay_trace_fleet(uncapped);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].update_bytes, b[i].update_bytes) << a[i].service;
    EXPECT_EQ(a[i].sync_traffic, b[i].sync_traffic) << a[i].service;
    EXPECT_EQ(a[i].commits, b[i].commits) << a[i].service;
  }
}

TEST(Fleet, MechanismsReduceTue) {
  // On the same mixed workload, Dropbox (BDS + IDS + dedup + compression)
  // must beat Box (none of the four) on TUE.
  const auto reports = replay_trace_fleet(small_config());
  double dropbox_tue = 0, box_tue = 0;
  for (const fleet_service_report& r : reports) {
    if (r.service == "Dropbox") dropbox_tue = r.tue();
    if (r.service == "Box") box_tue = r.tue();
  }
  EXPECT_LT(dropbox_tue, box_tue);
}

}  // namespace
}  // namespace cloudsync
