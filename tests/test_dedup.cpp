#include <gtest/gtest.h>

#include "dedup/dedup_engine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cloudsync {
namespace {

TEST(DedupIndex, AddContainsRemove) {
  dedup_index idx;
  const fingerprint fp = fingerprint_of(as_bytes("hello"));
  EXPECT_FALSE(idx.contains(1, fp));
  idx.add(1, fp);
  EXPECT_TRUE(idx.contains(1, fp));
  EXPECT_FALSE(idx.contains(2, fp));  // scoped
  idx.remove(1, fp);
  EXPECT_FALSE(idx.contains(1, fp));
}

TEST(DedupIndex, RefCounting) {
  dedup_index idx;
  const fingerprint fp = fingerprint_of(as_bytes("x"));
  idx.add(1, fp);
  idx.add(1, fp);
  idx.remove(1, fp);
  EXPECT_TRUE(idx.contains(1, fp));  // still one reference
  idx.remove(1, fp);
  EXPECT_FALSE(idx.contains(1, fp));
}

TEST(DedupIndex, RemoveAbsentIsNoOp) {
  dedup_index idx;
  EXPECT_NO_THROW(idx.remove(1, fingerprint_of(as_bytes("gone"))));
}

TEST(DedupIndex, UniqueCount) {
  dedup_index idx;
  idx.add(1, fingerprint_of(as_bytes("a")));
  idx.add(1, fingerprint_of(as_bytes("b")));
  idx.add(1, fingerprint_of(as_bytes("a")));
  EXPECT_EQ(idx.unique_count(1), 2u);
  EXPECT_EQ(idx.unique_count(9), 0u);
}

TEST(BlockFingerprints, CountMatchesChunking) {
  rng r(1);
  const byte_buffer data = random_bytes(r, 10'000);
  EXPECT_EQ(block_fingerprints(data, 4096).size(), 3u);
  EXPECT_EQ(block_fingerprints(data, 10'000).size(), 1u);
  EXPECT_TRUE(block_fingerprints({}, 4096).empty());
}

TEST(DedupEngine, NoneShipsEverything) {
  dedup_engine eng(dedup_policy::disabled());
  rng r(2);
  const byte_buffer data = random_bytes(r, 5000);
  const dedup_result res = eng.analyze(7, data);
  EXPECT_EQ(res.new_bytes, 5000u);
  EXPECT_EQ(res.duplicate_bytes, 0u);
  EXPECT_EQ(res.fingerprints_sent, 0u);
  // commit is a no-op; re-analysis still ships everything
  eng.commit(7, data);
  EXPECT_EQ(eng.analyze(7, data).new_bytes, 5000u);
}

TEST(DedupEngine, FullFileDetectsExactCopy) {
  dedup_engine eng({dedup_granularity::full_file, 4 * MiB, false});
  rng r(3);
  const byte_buffer data = random_bytes(r, 8000);
  EXPECT_EQ(eng.analyze(1, data).new_bytes, 8000u);
  eng.commit(1, data);
  const dedup_result res = eng.analyze(1, data);
  EXPECT_TRUE(res.whole_file_duplicate);
  EXPECT_EQ(res.duplicate_bytes, 8000u);
  EXPECT_EQ(res.new_bytes, 0u);
  EXPECT_EQ(res.fingerprints_sent, 1u);
}

TEST(DedupEngine, FullFileMissesModifiedCopy) {
  dedup_engine eng({dedup_granularity::full_file, 4 * MiB, false});
  rng r(4);
  byte_buffer data = random_bytes(r, 8000);
  eng.commit(1, data);
  data[0] ^= 1;
  EXPECT_EQ(eng.analyze(1, data).new_bytes, 8000u);
}

TEST(DedupEngine, PerUserScopingBlocksOtherUsers) {
  dedup_engine eng({dedup_granularity::full_file, 4 * MiB,
                    /*cross_user=*/false});
  rng r(5);
  const byte_buffer data = random_bytes(r, 4000);
  eng.commit(1, data);
  EXPECT_EQ(eng.analyze(2, data).new_bytes, 4000u);  // different user
  EXPECT_EQ(eng.analyze(1, data).new_bytes, 0u);
}

TEST(DedupEngine, CrossUserSharing) {
  dedup_engine eng({dedup_granularity::full_file, 4 * MiB,
                    /*cross_user=*/true});
  rng r(6);
  const byte_buffer data = random_bytes(r, 4000);
  eng.commit(1, data);
  EXPECT_TRUE(eng.analyze(2, data).whole_file_duplicate);
}

TEST(DedupEngine, BlockLevelPartialMatch) {
  constexpr std::size_t kBlock = 1024;
  dedup_engine eng({dedup_granularity::fixed_block, kBlock, false});
  rng r(7);
  const byte_buffer f1 = random_bytes(r, 4 * kBlock);
  eng.commit(1, f1);

  // f2 = first half of f1 + fresh content.
  byte_buffer f2(f1.begin(), f1.begin() + 2 * kBlock);
  const byte_buffer tail = random_bytes(r, 2 * kBlock);
  append(f2, tail);

  const dedup_result res = eng.analyze(1, f2);
  EXPECT_EQ(res.duplicate_bytes, 2 * kBlock);
  EXPECT_EQ(res.new_bytes, 2 * kBlock);
  EXPECT_EQ(res.new_chunks.size(), 2u);
  EXPECT_EQ(res.fingerprints_sent, 4u);
  EXPECT_FALSE(res.whole_file_duplicate);
}

TEST(DedupEngine, BlockLevelSelfDuplication) {
  // The mechanism behind Algorithm 1: f2 = f1 + f1 where |f1| = block size.
  constexpr std::size_t kBlock = 4096;
  dedup_engine eng({dedup_granularity::fixed_block, kBlock, false});
  rng r(8);
  const byte_buffer f1 = random_bytes(r, kBlock);
  eng.commit(1, f1);

  byte_buffer f2 = f1;
  append(f2, f1);
  const dedup_result res = eng.analyze(1, f2);
  EXPECT_TRUE(res.whole_file_duplicate);
  EXPECT_EQ(res.new_bytes, 0u);
}

TEST(DedupEngine, BlockLevelMisalignedDuplicateMisses) {
  // Fixed-block dedup is alignment-sensitive: a one-byte prefix shift
  // destroys every match (why the paper contrasts it with CDC).
  constexpr std::size_t kBlock = 1024;
  dedup_engine eng({dedup_granularity::fixed_block, kBlock, false});
  rng r(9);
  const byte_buffer f1 = random_bytes(r, 4 * kBlock);
  eng.commit(1, f1);

  byte_buffer f2;
  f2.push_back(0xaa);
  append(f2, f1);
  const dedup_result res = eng.analyze(1, f2);
  EXPECT_EQ(res.duplicate_bytes, 0u);
}

TEST(DedupEngine, RetractForgetsContent) {
  dedup_engine eng({dedup_granularity::full_file, 4 * MiB, false});
  rng r(10);
  const byte_buffer data = random_bytes(r, 2000);
  eng.commit(1, data);
  eng.retract(1, data);
  EXPECT_EQ(eng.analyze(1, data).new_bytes, 2000u);
}

TEST(DedupEngine, EmptyFile) {
  dedup_engine eng({dedup_granularity::full_file, 4 * MiB, false});
  const dedup_result res = eng.analyze(1, byte_view{});
  EXPECT_EQ(res.new_bytes, 0u);
  EXPECT_FALSE(res.whole_file_duplicate);
  EXPECT_NO_THROW(eng.commit(1, byte_view{}));
}

TEST(DedupEngine, ContentDefinedSurvivesPrefixShift) {
  // The misaligned-duplicate case that fixed blocks miss: CDC re-finds the
  // shared content after an insertion at the front.
  dedup_policy policy;
  policy.granularity = dedup_granularity::content_defined;
  policy.cdc = {1024, 4096, 16 * 1024};
  dedup_engine cdc(policy);
  dedup_engine fixed({dedup_granularity::fixed_block, 4096, false});

  rng r(20);
  const byte_buffer base = random_bytes(r, 256 * 1024);
  cdc.commit(1, base);
  fixed.commit(1, base);

  byte_buffer shifted = random_bytes(r, 11);
  append(shifted, base);

  const dedup_result cdc_res = cdc.analyze(1, shifted);
  const dedup_result fixed_res = fixed.analyze(1, shifted);
  EXPECT_EQ(fixed_res.duplicate_bytes, 0u);  // alignment destroyed
  EXPECT_GT(cdc_res.duplicate_bytes, shifted.size() * 8 / 10);
}

TEST(DedupEngine, ContentDefinedExactCopyFullyDedups) {
  dedup_policy policy;
  policy.granularity = dedup_granularity::content_defined;
  policy.cdc = {1024, 4096, 16 * 1024};
  dedup_engine eng(policy);
  rng r(21);
  const byte_buffer data = random_bytes(r, 100 * 1024);
  eng.commit(1, data);
  const dedup_result res = eng.analyze(1, data);
  EXPECT_TRUE(res.whole_file_duplicate);
  EXPECT_EQ(res.new_bytes, 0u);
}

TEST(DedupEngine, ContentDefinedRetract) {
  dedup_policy policy;
  policy.granularity = dedup_granularity::content_defined;
  dedup_engine eng(policy);
  rng r(22);
  const byte_buffer data = random_bytes(r, 64 * 1024);
  eng.commit(1, data);
  eng.retract(1, data);
  EXPECT_EQ(eng.analyze(1, data).new_bytes, data.size());
}

class DedupGranularitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DedupGranularitySweep, SmallerBlocksFindAtLeastAsManyDuplicates) {
  const std::size_t block = GetParam();
  dedup_engine coarse({dedup_granularity::fixed_block, block * 2, false});
  dedup_engine fine({dedup_granularity::fixed_block, block, false});
  rng r(11);
  const byte_buffer base = random_bytes(r, block * 8);
  coarse.commit(1, base);
  fine.commit(1, base);

  // Modify one byte in the middle.
  byte_buffer v2 = base;
  v2[block * 3] ^= 1;
  EXPECT_LE(fine.analyze(1, v2).new_bytes, coarse.analyze(1, v2).new_bytes);
}

INSTANTIATE_TEST_SUITE_P(Blocks, DedupGranularitySweep,
                         ::testing::Values(512, 1024, 4096, 16 * 1024));

}  // namespace
}  // namespace cloudsync
