#include "net/tcp_model.hpp"

#include <gtest/gtest.h>

#include "net/http_model.hpp"

namespace cloudsync {
namespace {

TEST(OneWayCost, ZeroBytesIsFree) {
  const transfer_cost c =
      one_way_cost(0, 1e6, sim_time::from_msec(50), {}, 10);
  EXPECT_EQ(c.fwd_wire, 0u);
  EXPECT_EQ(c.rev_wire, 0u);
  EXPECT_EQ(c.duration, sim_time{});
}

TEST(OneWayCost, WireOverheadIsBounded) {
  const tcp_config cfg;
  const std::uint64_t app = 1'000'000;
  const transfer_cost c = one_way_cost(app, 2.5e6, sim_time::from_msec(50),
                                       cfg, cfg.initial_window);
  // TCP/IP headers ≈ 2.7 %, TLS records ≈ 0.2 %: total within [2 %, 5 %].
  EXPECT_GT(c.fwd_wire, app * 102 / 100);
  EXPECT_LT(c.fwd_wire, app * 105 / 100);
  EXPECT_GT(c.rev_wire, 0u);
  EXPECT_LT(c.rev_wire, app / 50);
}

TEST(OneWayCost, LowerBandwidthIsSlower) {
  const tcp_config cfg;
  const auto fast = one_way_cost(1'000'000, mbps_to_bytes_per_sec(20),
                                 sim_time::from_msec(50), cfg, 10);
  const auto slow = one_way_cost(1'000'000, mbps_to_bytes_per_sec(1.6),
                                 sim_time::from_msec(50), cfg, 10);
  EXPECT_GT(slow.duration, fast.duration);
  // Wire bytes are bandwidth-independent.
  EXPECT_EQ(slow.fwd_wire, fast.fwd_wire);
}

TEST(OneWayCost, HigherLatencyIsSlowerForShortFlows) {
  const tcp_config cfg;
  const auto near = one_way_cost(100'000, mbps_to_bytes_per_sec(20),
                                 sim_time::from_msec(40), cfg, 10);
  const auto far = one_way_cost(100'000, mbps_to_bytes_per_sec(20),
                                sim_time::from_msec(1000), cfg, 10);
  EXPECT_GT(far.duration, near.duration);
}

TEST(OneWayCost, ThroughputApproachesLineRateForLargeFlows) {
  const tcp_config cfg;
  const double bw = mbps_to_bytes_per_sec(20);
  const std::uint64_t app = 50'000'000;
  const auto c = one_way_cost(app, bw, sim_time::from_msec(50), cfg, 10);
  const double ideal_sec = static_cast<double>(app) / bw;
  EXPECT_LT(c.duration.sec(), ideal_sec * 1.3);
  EXPECT_GT(c.duration.sec(), ideal_sec * 0.95);
}

TEST(OneWayCost, LargerInitialWindowIsFaster) {
  const tcp_config cfg;
  const auto cold = one_way_cost(500'000, mbps_to_bytes_per_sec(20),
                                 sim_time::from_msec(100), cfg, 1);
  const auto warm = one_way_cost(500'000, mbps_to_bytes_per_sec(20),
                                 sim_time::from_msec(100), cfg, 64);
  EXPECT_LT(warm.duration, cold.duration);
}

TEST(OneWayCost, LossCostsBytesAndTime) {
  const tcp_config cfg;
  const auto clean = one_way_cost(1'000'000, mbps_to_bytes_per_sec(10),
                                  sim_time::from_msec(100), cfg, 10, 0.0);
  const auto lossy = one_way_cost(1'000'000, mbps_to_bytes_per_sec(10),
                                  sim_time::from_msec(100), cfg, 10, 0.02);
  EXPECT_GT(lossy.fwd_wire, clean.fwd_wire);
  EXPECT_GT(lossy.rev_wire, clean.rev_wire);
  EXPECT_GT(lossy.duration, clean.duration);
  // 2 % loss should cost low-single-digit percent extra bytes.
  EXPECT_LT(lossy.fwd_wire, clean.fwd_wire * 110 / 100);
}

TEST(OneWayCost, LossMonotone) {
  const tcp_config cfg;
  sim_time prev{};
  for (double loss : {0.0, 0.005, 0.02, 0.05, 0.1}) {
    const auto c = one_way_cost(500'000, mbps_to_bytes_per_sec(5),
                                sim_time::from_msec(200), cfg, 10, loss);
    EXPECT_GE(c.duration, prev) << loss;
    prev = c.duration;
  }
}

TEST(OneWayCost, OneSegmentCostsSerialisationPlusHalfRtt) {
  // Regression: the final slow-start round used to charge max(RTT, tx) on
  // top of the tail half-RTT, making a 1-segment transfer cost ~1.5 RTT.
  // Nothing waits for the last round's ACKs, so the true cost is the
  // serialisation time plus one propagation leg.
  const tcp_config cfg;
  const double bw = 1e6;
  const sim_time rtt = sim_time::from_msec(100);
  const transfer_cost c = one_way_cost(100, bw, rtt, cfg, cfg.initial_window);
  const double seg_wire = static_cast<double>(cfg.mss + cfg.header_bytes);
  EXPECT_NEAR(c.duration.sec(), seg_wire / bw + 0.5 * rtt.sec(), 1e-9);
  EXPECT_LT(c.duration, rtt);  // the pre-fix model returned ~1.5 RTT here
}

TEST(OneWayCost, SingleRoundCostsSerialisationPlusHalfRtt) {
  // A flow that fits the initial window entirely is one burst: tx + RTT/2,
  // independent of how tx compares to the RTT.
  const tcp_config cfg;
  const double bw = 1e6;
  const sim_time rtt = sim_time::from_msec(100);
  // 14000 app bytes -> one TLS record -> 14029 stream bytes -> 10 segments,
  // exactly the initial window.
  const std::uint64_t app = 14'000;
  const std::uint64_t segments =
      (app + cfg.tls_record_overhead + cfg.mss - 1) / cfg.mss;
  ASSERT_EQ(segments, static_cast<std::uint64_t>(cfg.initial_window));
  const transfer_cost c = one_way_cost(app, bw, rtt, cfg, cfg.initial_window);
  const double seg_wire = static_cast<double>(cfg.mss + cfg.header_bytes);
  EXPECT_NEAR(c.duration.sec(),
              static_cast<double>(segments) * seg_wire / bw + 0.5 * rtt.sec(),
              1e-9);
  EXPECT_LT(c.duration, rtt);
}

TEST(OneWayCost, LossModelMatchesDerivation) {
  // Regression: the loss path both added recovery RTTs and divided the whole
  // duration by (1 - p), double-penalising loss. The intended model: each
  // lost segment reappears as p/(1-p) expected extra segments on the wire
  // (with dup-ACKs) and one recovery RTT per retransmission.
  const tcp_config cfg;
  const double bw = 2.5e6;
  const sim_time rtt = sim_time::from_msec(100);
  const std::uint64_t app = 1'000'000;
  const double seg_wire = static_cast<double>(cfg.mss + cfg.header_bytes);

  const std::uint64_t records =
      (app + cfg.tls_record_size - 1) / cfg.tls_record_size;
  const std::uint64_t stream = app + records * cfg.tls_record_overhead;
  const std::uint64_t segments = (stream + cfg.mss - 1) / cfg.mss;

  const transfer_cost clean = one_way_cost(app, bw, rtt, cfg, 10, 0.0);
  for (const double p : {0.01, 0.1}) {
    const transfer_cost lossy = one_way_cost(app, bw, rtt, cfg, 10, p);
    const double retx = static_cast<double>(segments) * p / (1.0 - p);
    EXPECT_EQ(lossy.fwd_wire,
              clean.fwd_wire + static_cast<std::uint64_t>(retx * seg_wire))
        << p;
    EXPECT_EQ(lossy.rev_wire,
              clean.rev_wire +
                  static_cast<std::uint64_t>(
                      retx * 3.0 * static_cast<double>(cfg.header_bytes)))
        << p;
    EXPECT_NEAR(lossy.duration.sec(),
                clean.duration.sec() + retx * seg_wire / bw +
                    retx * rtt.sec(),
                1e-5)
        << p;
  }
  // p = 0 must take the exact clean path (no loss block at all).
  const transfer_cost zero = one_way_cost(app, bw, rtt, cfg, 10, 0.0);
  EXPECT_EQ(zero.fwd_wire, clean.fwd_wire);
  EXPECT_EQ(zero.rev_wire, clean.rev_wire);
  EXPECT_EQ(zero.duration, clean.duration);
}

TEST(OneWayCost, LossRateClamped) {
  const tcp_config cfg;
  // Absurd loss rates must not hang or divide by zero.
  const auto c = one_way_cost(10'000, 1e6, sim_time::from_msec(50), cfg, 10,
                              0.99);
  EXPECT_GT(c.duration, sim_time{});
  EXPECT_LT(c.duration, sim_time::from_sec(60));
}

TEST(LinkConfig, BeijingIsLossy) {
  EXPECT_GT(link_config::beijing().loss_rate, 0.0);
  EXPECT_EQ(link_config::minnesota().loss_rate, 0.0);
}

TEST(TcpConnection, HandshakeOnlyWhenColdOrIdle) {
  traffic_meter meter;
  tcp_connection conn(link_config::minnesota(), {}, meter);
  sim_time t = conn.exchange(sim_time{}, 1000, 1000);
  EXPECT_EQ(conn.handshakes(), 1u);

  // Immediately after: warm, no second handshake.
  t = conn.exchange(t, 1000, 1000);
  EXPECT_EQ(conn.handshakes(), 1u);

  // After the idle timeout: handshake again.
  t += sim_time::from_sec(31);
  conn.exchange(t, 1000, 1000);
  EXPECT_EQ(conn.handshakes(), 2u);
}

TEST(TcpConnection, HandshakeChargesTransportBytes) {
  traffic_meter meter;
  tcp_connection conn(link_config::minnesota(), {}, meter);
  conn.exchange(sim_time{}, 0, 0);
  // TLS hello + certs dominate: several KB.
  EXPECT_GT(meter.by_category(traffic_category::transport), 5000u);
  EXPECT_EQ(meter.by_category(traffic_category::payload), 0u);
}

TEST(TcpConnection, ExchangeTimeIncludesRtt) {
  traffic_meter meter;
  link_config link = link_config::minnesota();
  link.rtt = sim_time::from_msec(100);
  tcp_connection conn(link, {}, meter);
  const sim_time t0 = conn.exchange(sim_time{}, 100, 100);  // with handshake
  const sim_time t1 = conn.exchange(t0, 100, 100);          // warm
  EXPECT_GE((t1 - t0).msec(), 100.0);  // at least one round trip
  EXPECT_LT((t1 - t0).msec(), 500.0);
}

TEST(TcpConnection, ColdExchangePaysHandshakeAndSmallWindow) {
  // Pins the handshake/cwnd mechanics: a cold exchange is exactly the 3-RTT
  // handshake plus a transfer from the initial window; the warm follow-up is
  // exactly a transfer from the grown (4x) window — and therefore faster.
  traffic_meter meter;
  const link_config link = link_config::minnesota();
  const tcp_config cfg;
  tcp_connection conn(link, cfg, meter);

  const std::uint64_t up = 500'000;
  const sim_time t0 = conn.exchange(sim_time{}, up, 0);
  const transfer_cost cold = one_way_cost(up, link.up_bytes_per_sec, link.rtt,
                                          cfg, cfg.initial_window);
  EXPECT_EQ(t0, link.rtt * 3.0 + cold.duration);

  const sim_time t1 = conn.exchange(t0, up, 0);
  const transfer_cost warm = one_way_cost(up, link.up_bytes_per_sec, link.rtt,
                                          cfg, cfg.initial_window * 4);
  EXPECT_EQ(t1 - t0, warm.duration);
  EXPECT_LT(t1 - t0, t0 - link.rtt * 3.0);
}

TEST(TcpConnection, BeijingSlowerThanMinnesota) {
  traffic_meter m1, m2;
  tcp_connection mn(link_config::minnesota(), {}, m1);
  tcp_connection bj(link_config::beijing(), {}, m2);
  const sim_time t_mn = mn.exchange(sim_time{}, 500'000, 1000);
  const sim_time t_bj = bj.exchange(sim_time{}, 500'000, 1000);
  EXPECT_GT(t_bj, t_mn * 2.0);
}

TEST(PacketFilter, ClampsAndDelays) {
  const link_config base = link_config::minnesota();
  const packet_filter f{mbps_to_bytes_per_sec(2.0), sim_time::from_msec(200)};
  const link_config shaped = f.apply(base);
  EXPECT_DOUBLE_EQ(shaped.up_bytes_per_sec, mbps_to_bytes_per_sec(2.0));
  EXPECT_EQ(shaped.rtt, base.rtt + sim_time::from_msec(200));
}

TEST(PacketFilter, UnlimitedBandwidthKeepsBase) {
  const link_config base = link_config::minnesota();
  const packet_filter f{0, sim_time{}};
  const link_config shaped = f.apply(base);
  EXPECT_DOUBLE_EQ(shaped.up_bytes_per_sec, base.up_bytes_per_sec);
  EXPECT_EQ(shaped.rtt, base.rtt);
}

TEST(HttpExchange, RecordsHeadersAndBody) {
  traffic_meter meter;
  tcp_connection conn(link_config::minnesota(), {}, meter);
  conn.exchange(sim_time{}, 1, 1);  // warm up
  meter.reset();

  const http_config http{700, 450};
  http_exchange(conn, http, meter, sim_time::from_sec(1),
                traffic_category::payload, 10'000, 2'000);
  EXPECT_EQ(meter.get(direction::up, traffic_category::payload), 10'000u);
  EXPECT_EQ(meter.get(direction::down, traffic_category::payload), 2'000u);
  EXPECT_EQ(meter.get(direction::up, traffic_category::notification), 700u);
  EXPECT_EQ(meter.get(direction::down, traffic_category::notification), 450u);
  EXPECT_GT(meter.by_category(traffic_category::transport), 0u);
}

}  // namespace
}  // namespace cloudsync
