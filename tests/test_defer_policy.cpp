// Defer policies: fixed debounce, the ASD recurrence (paper Eq. 2), and the
// UDS-style byte counter the paper contrasts against in §6.1.
#include <gtest/gtest.h>

#include "client/defer_policy.hpp"

namespace cloudsync {
namespace {

sim_time at(double sec) { return sim_time::from_sec(sec); }

TEST(NoDefer, FiresImmediately) {
  no_defer p;
  EXPECT_EQ(p.next_fire(at(5), 0), at(5));
  EXPECT_EQ(p.name(), "none");
}

TEST(FixedDefer, DebouncesFromLatestUpdate) {
  fixed_defer p(at(4.2));
  EXPECT_EQ(p.next_fire(at(10), 0), at(14.2));
  EXPECT_EQ(p.next_fire(at(12), 0), at(16.2));  // pushed out by the update
  EXPECT_EQ(p.deferment(), at(4.2));
}

TEST(FixedDefer, Name) {
  fixed_defer p(at(10.5));
  EXPECT_EQ(p.name(), "fixed (10.5 s)");
}

TEST(AdaptiveDefer, ConvergesToInterUpdateGap) {
  // With a steady gap Δ, Eq. 2 has fixed point T* = Δ + 2ε.
  adaptive_defer::params prm;
  prm.epsilon = at(0.5);
  prm.t_max = at(60);
  prm.t_initial = at(1);
  adaptive_defer p(prm);

  const double gap = 7.0;
  sim_time t{};
  for (int i = 0; i < 40; ++i) {
    t += at(gap);
    p.next_fire(t, 0);
  }
  EXPECT_NEAR(p.current_deferment().sec(), gap + 2 * prm.epsilon.sec(), 0.05);
}

TEST(AdaptiveDefer, FixedPointExceedsGap) {
  // The defining ASD property: T_i ends up slightly longer than Δt, so
  // steady modification streams always batch.
  adaptive_defer p;
  sim_time t{};
  for (int i = 0; i < 40; ++i) {
    t += at(3.0);
    p.next_fire(t, 0);
  }
  EXPECT_GT(p.current_deferment().sec(), 3.0);
  EXPECT_LT(p.current_deferment().sec(), 3.0 + 2.5);
}

TEST(AdaptiveDefer, CappedByTmax) {
  adaptive_defer::params prm;
  prm.t_max = at(5);
  adaptive_defer p(prm);
  sim_time t{};
  for (int i = 0; i < 10; ++i) {
    t += at(100.0);  // huge gaps
    p.next_fire(t, 0);
  }
  EXPECT_LE(p.current_deferment(), at(5));
}

TEST(AdaptiveDefer, AdaptsDownAfterBurst) {
  adaptive_defer p;
  sim_time t{};
  // Slow phase.
  for (int i = 0; i < 20; ++i) {
    t += at(10.0);
    p.next_fire(t, 0);
  }
  const sim_time slow = p.current_deferment();
  // Fast phase.
  for (int i = 0; i < 20; ++i) {
    t += at(1.0);
    p.next_fire(t, 0);
  }
  EXPECT_LT(p.current_deferment(), slow);
  EXPECT_GT(p.current_deferment().sec(), 1.0);
}

TEST(AdaptiveDefer, HandComputedEq2Trace) {
  // Pins the exact Eq. 2 recurrence T_i = min(T_{i-1}/2 + Δt_i/2 + ε, T_max)
  // step by step, including the first-update Δt = T_0 convention and the
  // T_max cap. ε = 0.5 s, T_max = 15 s, T_0 = 1 s; updates at 2, 5, 6, 20,
  // 60 s.
  adaptive_defer::params prm;
  prm.epsilon = at(0.5);
  prm.t_max = at(15);
  prm.t_initial = at(1);
  adaptive_defer p(prm);

  // i=1: Δt = T_0 = 1; T_1 = 1/2 + 1/2 + 0.5 = 1.5.
  EXPECT_EQ(p.next_fire(at(2), 0), at(3.5));
  EXPECT_EQ(p.current_deferment(), at(1.5));
  // i=2: Δt = 3; T_2 = 0.75 + 1.5 + 0.5 = 2.75.
  EXPECT_EQ(p.next_fire(at(5), 0), at(7.75));
  EXPECT_EQ(p.current_deferment(), at(2.75));
  // i=3: Δt = 1; T_3 = 1.375 + 0.5 + 0.5 = 2.375.
  EXPECT_EQ(p.next_fire(at(6), 0), at(8.375));
  EXPECT_EQ(p.current_deferment(), at(2.375));
  // i=4: Δt = 14; T_4 = 1.1875 + 7 + 0.5 = 8.6875.
  EXPECT_EQ(p.next_fire(at(20), 0), at(28.6875));
  EXPECT_EQ(p.current_deferment(), at(8.6875));
  // i=5: Δt = 40; 4.34375 + 20 + 0.5 > T_max → capped at 15.
  EXPECT_EQ(p.next_fire(at(60), 0), at(75));
  EXPECT_EQ(p.current_deferment(), at(15));
}

TEST(AdaptiveDefer, ResetRestoresInitialState) {
  adaptive_defer::params prm;
  prm.t_initial = at(2);
  adaptive_defer p(prm);
  sim_time t{};
  for (int i = 0; i < 5; ++i) {
    t += at(9);
    p.next_fire(t, 0);
  }
  p.reset();
  EXPECT_EQ(p.current_deferment(), at(2));
}

TEST(AdaptiveDefer, FireTimeIsUpdatePlusDeferment) {
  adaptive_defer p;
  const sim_time fire = p.next_fire(at(100), 0);
  EXPECT_EQ(fire, at(100) + p.current_deferment());
}

TEST(ByteCounterDefer, FiresImmediatelyAtThreshold) {
  byte_counter_defer::params prm;
  prm.threshold_bytes = 1000;
  prm.max_wait = at(30);
  byte_counter_defer p(prm);
  EXPECT_EQ(p.next_fire(at(1), 2000), at(1));
}

TEST(ByteCounterDefer, WaitsBelowThreshold) {
  byte_counter_defer::params prm;
  prm.threshold_bytes = 1000;
  prm.max_wait = at(30);
  byte_counter_defer p(prm);
  EXPECT_EQ(p.next_fire(at(1), 10), at(31));
  // The deadline anchors to the first pending update, not the latest.
  EXPECT_EQ(p.next_fire(at(5), 20), at(31));
}

TEST(ByteCounterDefer, ThresholdClosesWindow) {
  byte_counter_defer::params prm;
  prm.threshold_bytes = 1000;
  prm.max_wait = at(30);
  byte_counter_defer p(prm);
  p.next_fire(at(1), 10);
  EXPECT_EQ(p.next_fire(at(2), 1500), at(2));  // crossed: fire now
  // Next update opens a fresh window anchored at its own time.
  EXPECT_EQ(p.next_fire(at(10), 5), at(40));
}

TEST(ByteCounterDefer, OnCommitClosesWindow) {
  byte_counter_defer::params prm;
  prm.threshold_bytes = 1000;
  prm.max_wait = at(30);
  byte_counter_defer p(prm);
  p.next_fire(at(1), 10);
  p.on_commit();  // engine committed at the deadline
  EXPECT_EQ(p.next_fire(at(50), 10), at(80));  // fresh anchor
}

TEST(ByteCounterDefer, OnCommitWithoutWindowIsNoOp) {
  byte_counter_defer::params prm;
  prm.threshold_bytes = 1000;
  prm.max_wait = at(30);
  byte_counter_defer p(prm);
  p.on_commit();  // nothing pending: must not disturb the next window
  EXPECT_EQ(p.next_fire(at(3), 10), at(33));
  // A threshold fire closes the window by itself; a subsequent on_commit
  // (the engine confirming that commit) must stay idempotent.
  EXPECT_EQ(p.next_fire(at(4), 5000), at(4));
  p.on_commit();
  EXPECT_EQ(p.next_fire(at(8), 10), at(38));
}

TEST(ByteCounterDefer, ResetClearsWindow) {
  byte_counter_defer p;
  p.next_fire(at(1), 10);
  p.reset();
  EXPECT_EQ(p.next_fire(at(9), 10),
            at(9) + byte_counter_defer::params{}.max_wait);
}

TEST(DeferConfig, InstantiatesCorrectPolicies) {
  EXPECT_EQ(defer_config::none().instantiate()->name(), "none");
  EXPECT_EQ(defer_config::fixed(at(6)).instantiate()->name(), "fixed (6.0 s)");
  EXPECT_EQ(defer_config::asd().instantiate()->name(), "adaptive (ASD)");
  EXPECT_EQ(defer_config::uds().instantiate()->name(), "byte counter (UDS)");
}

}  // namespace
}  // namespace cloudsync
