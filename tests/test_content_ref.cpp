#include "store/content_ref.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pipeline/byte_pipeline.hpp"
#include "store/content_store.hpp"
#include "util/content_cache.hpp"
#include "util/rng.hpp"

namespace cloudsync {
namespace {

/// Run a test body in both store modes, restoring CoW afterwards.
template <typename Fn>
void in_both_modes(Fn&& body) {
  for (const content_mode m : {content_mode::cow, content_mode::flat}) {
    content_store::global().set_mode(m);
    body(m);
  }
  content_store::global().set_mode(content_mode::cow);
}

TEST(ContentRef, BasicRoundTrip) {
  in_both_modes([](content_mode) {
    const byte_buffer data = to_buffer("hello, rope world");
    const content_ref ref = content_ref::from_bytes(data);
    EXPECT_EQ(ref.size(), data.size());
    EXPECT_FALSE(ref.empty());
    EXPECT_EQ(ref.flatten(), data);
    EXPECT_EQ(ref, byte_view{data});
    EXPECT_EQ(to_string(ref), "hello, rope world");
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(ref.at(i), data[i]);
    }
    EXPECT_THROW(ref.at(data.size()), std::out_of_range);
  });
}

TEST(ContentRef, EmptyRef) {
  const content_ref ref;
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(ref.size(), 0u);
  EXPECT_TRUE(ref.flatten().empty());
  EXPECT_EQ(ref.hash64(), content_hash64({}));
  EXPECT_TRUE(ref.equal(content_ref{}));
  EXPECT_TRUE(ref.equal(byte_view{}));
  EXPECT_TRUE(content_ref::from_bytes({}).empty());
}

TEST(ContentRef, SubstrSharesAndMatches) {
  in_both_modes([](content_mode) {
    rng r(7);
    const byte_buffer data = random_bytes(r, 200'000);  // spans >2 chunks
    const content_ref ref = content_ref::from_bytes(data);
    for (const auto& [off, len] : std::vector<std::pair<std::size_t,
                                                        std::size_t>>{
             {0, 200'000},
             {0, 1},
             {199'999, 1},
             {65'535, 2},     // straddles the first intern boundary
             {65'536, 65'536},
             {1'000, 150'000}}) {
      const content_ref sub = ref.substr(off, len);
      EXPECT_EQ(sub.size(), len);
      EXPECT_EQ(sub.flatten(),
                byte_buffer(data.begin() + off, data.begin() + off + len));
    }
    EXPECT_THROW(ref.substr(1, 200'000), std::out_of_range);
  });
}

TEST(ContentRef, PatchBeyondEndThrows) {
  const content_ref ref = content_ref::from_bytes(to_buffer("abcdef"));
  const byte_buffer p = to_buffer("xy");
  EXPECT_THROW(ref.patched(5, p), std::out_of_range);
  EXPECT_NO_THROW(ref.patched(4, p));
}

TEST(ContentRef, Hash64MatchesFlatHashAtEveryTailShape) {
  // content_hash64 strides 32 bytes with an 8-byte-then-1-byte tail;
  // hash64() must reproduce it bit-for-bit at every tail length, and on
  // sub-ranges that start mid-chunk.
  rng r(11);
  const byte_buffer data = random_bytes(r, 70'000);
  const content_ref ref = content_ref::from_bytes(data);
  for (std::size_t n : {0u, 1u, 7u, 8u, 31u, 32u, 33u, 63u, 64u, 100u,
                        65'536u, 65'537u, 70'000u}) {
    EXPECT_EQ(ref.hash64_range(0, n),
              content_hash64(byte_view{data.data(), n}))
        << "len " << n;
  }
  for (std::size_t off : {1u, 13u, 65'535u, 65'536u, 65'540u}) {
    const std::size_t len = data.size() - off;
    EXPECT_EQ(ref.hash64_range(off, len),
              content_hash64(byte_view{data.data() + off, len}))
        << "off " << off;
  }
}

TEST(ContentHasher64, StreamingMatchesOneShotUnderRandomSplits) {
  rng r(13);
  const byte_buffer data = random_bytes(r, 10'000);
  const std::uint64_t want = content_hash64(data);
  for (int trial = 0; trial < 20; ++trial) {
    content_hasher64 h;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + r.uniform(700), data.size() - off);
      h.update(byte_view{data.data() + off, n});
      off += n;
    }
    EXPECT_EQ(h.finish(), want);
  }
}

/// One randomized op sequence, checked step by step against a plain vector
/// model. `erase` is modelled with the builder (prefix + suffix splice), the
/// same splice delta application uses.
void run_differential(std::uint64_t seed, content_mode mode) {
  content_store::global().set_mode(mode);
  rng r(seed);
  byte_buffer model = random_bytes(r, 1 + r.uniform(50'000));
  content_ref ref = content_ref::from_bytes(model);
  std::vector<content_ref> history;  // old versions must stay intact

  for (int step = 0; step < 60; ++step) {
    history.push_back(ref);
    const byte_buffer before = ref.flatten();
    switch (r.uniform(5)) {
      case 0: {  // patch
        if (model.empty()) break;
        const std::size_t off = r.uniform(model.size());
        const std::size_t len =
            std::min<std::size_t>(1 + r.uniform(5'000), model.size() - off);
        const byte_buffer data = random_bytes(r, len);
        std::copy(data.begin(), data.end(), model.begin() + off);
        ref = ref.patched(off, data);
        break;
      }
      case 1: {  // append
        const byte_buffer data = random_bytes(r, 1 + r.uniform(10'000));
        model.insert(model.end(), data.begin(), data.end());
        ref = ref.appended(data);
        break;
      }
      case 2: {  // slice down to a substring
        if (model.size() < 2) break;
        const std::size_t off = r.uniform(model.size() / 2);
        const std::size_t len = 1 + r.uniform(model.size() - off);
        model = byte_buffer(model.begin() + off, model.begin() + off + len);
        ref = ref.substr(off, len);
        break;
      }
      case 3: {  // erase a middle range (builder splice)
        if (model.size() < 2) break;
        const std::size_t off = r.uniform(model.size());
        const std::size_t len = 1 + r.uniform(model.size() - off);
        model.erase(model.begin() + off, model.begin() + off + len);
        content_ref::builder b;
        b.append(ref, 0, off);
        b.append(ref, off + len, ref.size() - off - len);
        ref = b.build();
        break;
      }
      case 4: {  // retain (layer adoption) — must not change bytes
        ref = ref.retain();
        break;
      }
    }
    ASSERT_EQ(ref.size(), model.size()) << "seed " << seed << " step " << step;
    ASSERT_TRUE(ref.equal(byte_view{model}))
        << "seed " << seed << " step " << step;
    ASSERT_EQ(ref.hash64(), content_hash64(model));
    // Immutability: the version we started this step from is unchanged.
    ASSERT_EQ(history.back().flatten(), before);
  }
  content_store::global().set_mode(content_mode::cow);
}

TEST(ContentRef, DifferentialAgainstVectorModelCow) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_differential(seed, content_mode::cow);
  }
}

TEST(ContentRef, DifferentialAgainstVectorModelFlat) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    run_differential(seed, content_mode::flat);
  }
}

TEST(ContentStore, RefcountExactness) {
  content_store& store = content_store::global();
  ASSERT_TRUE(store.empty()) << "a previous test leaked chunk handles";
  {
    rng r(3);
    const byte_buffer data = random_bytes(r, 150'000);
    content_ref a = content_ref::from_bytes(data);
    content_ref dup = content_ref::from_bytes(data);  // interns to same chunks
    content_ref sub = a.substr(10, 100'000);
    content_ref patched = a.patched(500, to_buffer("xxx"));
    EXPECT_FALSE(store.empty());
    const auto st = store.stats();
    EXPECT_GT(st.chunks, 0u);
    EXPECT_GT(st.intern_hits, 0u);  // dup aliased a's chunks
    // Dropping some refs keeps shared chunks alive.
    dup = content_ref{};
    sub = content_ref{};
    EXPECT_FALSE(store.empty());
  }
  // Every handle is gone: the store must be empty — refcounting is exact,
  // not eventual.
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.stats().live_bytes, 0u);
}

TEST(ContentStore, InternAliasesEqualBytes) {
  ASSERT_TRUE(content_store::global().empty());
  {
    rng r(5);
    const byte_buffer data = random_bytes(r, 64 * 1024);
    const content_ref a = content_ref::from_bytes(data);
    const content_ref b = content_ref::from_bytes(data);
    const auto prof = content_store::global().profile_table();
    // One unique chunk, two handles on it.
    EXPECT_EQ(prof.unique_bytes, data.size());
    EXPECT_EQ(prof.logical_bytes, 2 * data.size());
  }
  EXPECT_TRUE(content_store::global().empty());
}

TEST(ContentStore, LazyMaterializesOnceOnFirstRead) {
  int calls = 0;
  content_ref ref = content_ref::lazy(5, [&calls] {
    ++calls;
    return to_buffer("lazy!");
  });
  EXPECT_EQ(ref.size(), 5u);
  EXPECT_EQ(calls, 0);  // size queries never materialize
  EXPECT_EQ(to_string(ref), "lazy!");
  EXPECT_EQ(ref.at(0), 'l');
  EXPECT_EQ(calls, 1);
}

TEST(ContentRef, PipelineDigestsMatchFlatAtEveryChunkBoundaryOffset) {
  // The rope read path feeds pipeline stages segment by segment; any split
  // must give bit-identical digests to the flat whole-buffer feed. Exercise
  // every boundary shape: patches that start exactly at, one before, and one
  // after each intern-chunk boundary (which fragment the rope there).
  rng r(17);
  const std::size_t kChunk = content_store::kInternChunkBytes;
  const byte_buffer base = random_bytes(r, 3 * kChunk + 123);
  content_request req;
  req.sha256 = true;
  req.md5 = true;
  req.crc32 = true;
  req.weak = true;
  req.entropy = true;
  req.cdc = cdc_params{};
  req.fixed_block = 4096;

  std::vector<std::size_t> offsets = {0};
  for (std::size_t b = kChunk; b < base.size(); b += kChunk) {
    offsets.insert(offsets.end(), {b - 1, b, b + 1});
  }
  offsets.push_back(base.size() - 3);

  content_ref ref = content_ref::from_bytes(base);
  byte_buffer flat = base;
  for (const std::size_t off : offsets) {
    const byte_buffer patch = random_bytes(r, 3);
    ref = ref.patched(off, patch);
    std::copy(patch.begin(), patch.end(), flat.begin() + off);
    ASSERT_GT(ref.segment_count(), 1u);

    const content_report a = analyze_content(ref, req);
    const content_report b = analyze_content(flat, req);
    ASSERT_EQ(a.sha256, b.sha256) << "patch at " << off;
    ASSERT_EQ(a.md5, b.md5);
    ASSERT_EQ(a.crc32, b.crc32);
    ASSERT_EQ(a.weak, b.weak);
    ASSERT_EQ(a.entropy_bits_per_byte, b.entropy_bits_per_byte);
    ASSERT_EQ(a.total_bytes, b.total_bytes);
    ASSERT_EQ(a.cdc_chunks.size(), b.cdc_chunks.size());
    for (std::size_t i = 0; i < a.cdc_chunks.size(); ++i) {
      ASSERT_EQ(a.cdc_chunks[i].offset, b.cdc_chunks[i].offset);
      ASSERT_EQ(a.cdc_chunks[i].size, b.cdc_chunks[i].size);
    }
    const auto da = chunk_digests(ref, a.fixed_chunks);
    const auto db = chunk_digests(flat, b.fixed_chunks);
    ASSERT_EQ(da, db);
  }
}

TEST(ContentRef, BuilderMergesAdjacentRunsOfSameChunk) {
  rng r(23);
  const byte_buffer data = random_bytes(r, 10'000);
  const content_ref ref = content_ref::from_bytes(data);
  content_ref::builder b;
  b.append(ref, 0, 4'000);
  b.append(ref, 4'000, 6'000);  // contiguous in the same chunk → one segment
  const content_ref joined = b.build();
  EXPECT_EQ(joined.segment_count(), 1u);
  EXPECT_EQ(joined.flatten(), data);
}

TEST(ContentRef, UseAfterDetachGuardDocumentedBehaviour) {
  // The debug-build assertion fires on reading a chunk whose last handle
  // dropped; with live handles reads are always safe. This test pins the
  // safe side (the fatal side would abort the process).
  content_ref ref = content_ref::from_bytes(to_buffer("guarded"));
  const content_ref keep = ref.substr(0, 7);
  ref = content_ref{};  // `keep` still pins the chunk
  EXPECT_EQ(to_string(keep), "guarded");
}

}  // namespace
}  // namespace cloudsync
