#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace cloudsync {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(sim_time::from_sec(1.5).usec(), 1'500'000);
  EXPECT_EQ(sim_time::from_msec(2.5).usec(), 2500);
  EXPECT_EQ(sim_time::from_usec(42).usec(), 42);
  EXPECT_DOUBLE_EQ(sim_time::from_sec(2.0).sec(), 2.0);
  EXPECT_DOUBLE_EQ(sim_time::from_msec(10).msec(), 10.0);
}

TEST(SimTime, Arithmetic) {
  const sim_time a = sim_time::from_sec(2);
  const sim_time b = sim_time::from_sec(0.5);
  EXPECT_EQ((a + b).usec(), 2'500'000);
  EXPECT_EQ((a - b).usec(), 1'500'000);
  EXPECT_EQ((a * 0.25).usec(), 500'000);
  sim_time c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(SimTime, Comparison) {
  EXPECT_LT(sim_time::from_msec(1), sim_time::from_msec(2));
  EXPECT_EQ(sim_time{}, sim_time::from_usec(0));
  EXPECT_GT(sim_time::max(), sim_time::from_sec(1e9));
}

TEST(SimTime, Format) {
  EXPECT_EQ(sim_time::from_usec(500).str(), "500 us");
  EXPECT_EQ(sim_time::from_msec(1.5).str(), "1.50 ms");
  EXPECT_EQ(sim_time::from_sec(2.25).str(), "2.250 s");
}

}  // namespace
}  // namespace cloudsync
