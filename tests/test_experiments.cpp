// Paper-level integration tests: each checks that a packaged experiment
// reproduces the *shape* of the corresponding published result.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace cloudsync {
namespace {

experiment_config cfg_for(service_profile p,
                          access_method m = access_method::pc_client) {
  experiment_config cfg{std::move(p)};
  cfg.method = m;
  return cfg;
}

// --- Experiment 1: file creation (Table 6 / Fig 3) --------------------------

TEST(Exp1Creation, OneByteFileCostsRoughlyTableSixOverhead) {
  // Table 6, 1 B column (PC client): GD ≈ 9 K, DB ≈ 38 K, U1 ≈ 2 K.
  const std::uint64_t gd = measure_creation_traffic(cfg_for(google_drive()), 1);
  const std::uint64_t db = measure_creation_traffic(cfg_for(dropbox()), 1);
  const std::uint64_t u1 = measure_creation_traffic(cfg_for(ubuntu_one()), 1);
  EXPECT_NEAR(static_cast<double>(gd), 9e3, 4e3);
  EXPECT_NEAR(static_cast<double>(db), 38e3, 8e3);
  EXPECT_NEAR(static_cast<double>(u1), 2e3, 1.5e3);
  // Ordering: Ubuntu One leanest, Dropbox heaviest (of these three).
  EXPECT_LT(u1, gd);
  EXPECT_LT(gd, db);
}

TEST(Exp1Creation, TenMegabyteFileNearPayload) {
  // Table 6, 10 M column: all services land at 10.5-12.5 MB.
  for (const service_profile& s : all_services()) {
    const std::uint64_t traffic =
        measure_creation_traffic(cfg_for(s), 10 * MiB);
    EXPECT_GT(traffic, 10 * MiB) << s.name;
    EXPECT_LT(traffic, 13 * MiB) << s.name;
  }
}

TEST(Exp1Creation, TueFallsWithFileSize) {
  // Fig 3: small files → huge TUE; >= 1 MB → TUE < 1.4.
  const experiment_config cfg = cfg_for(google_drive());
  const double tue_1k =
      tue(measure_creation_traffic(cfg, 1 * KiB), 1 * KiB);
  const double tue_100k =
      tue(measure_creation_traffic(cfg, 100 * KiB), 100 * KiB);
  const double tue_1m =
      tue(measure_creation_traffic(cfg, 1 * MiB), 1 * MiB);
  EXPECT_GT(tue_1k, 5.0);
  EXPECT_LT(tue_100k, 1.5);
  EXPECT_GT(tue_100k, 1.0);
  EXPECT_LT(tue_1m, 1.4);
  EXPECT_GT(tue_1k, tue_100k);
  EXPECT_GT(tue_100k, tue_1m);
}

TEST(Exp1Creation, WebAndMobileAnchorsMatchTableSix) {
  // Table 6, 1 B column, web row: GD 6 K, OD 28 K, U1 37 K.
  EXPECT_NEAR(static_cast<double>(measure_creation_traffic(
                  cfg_for(google_drive(), access_method::web_browser), 1)),
              6e3, 2.5e3);
  EXPECT_NEAR(static_cast<double>(measure_creation_traffic(
                  cfg_for(onedrive(), access_method::web_browser), 1)),
              28e3, 6e3);
  EXPECT_NEAR(static_cast<double>(measure_creation_traffic(
                  cfg_for(ubuntu_one(), access_method::web_browser), 1)),
              37e3, 7e3);
  // Mobile row: GD 32 K, DB 18 K, Box 16 K.
  EXPECT_NEAR(static_cast<double>(measure_creation_traffic(
                  cfg_for(google_drive(), access_method::mobile_app), 1)),
              32e3, 6e3);
  EXPECT_NEAR(static_cast<double>(measure_creation_traffic(
                  cfg_for(dropbox(), access_method::mobile_app), 1)),
              18e3, 5e3);
  EXPECT_NEAR(static_cast<double>(measure_creation_traffic(
                  cfg_for(box(), access_method::mobile_app), 1)),
              16e3, 5e3);
}

TEST(Exp1Creation, MobileOverheadExceedsPcForMostServices) {
  // The paper's observation that mobile users suffer the most per-event
  // overhead (true for GD, OD, U1, SS; Dropbox/Box invert it).
  for (const char* name :
       {"Google Drive", "OneDrive", "Ubuntu One", "SugarSync"}) {
    const service_profile s = *find_service(name);
    const std::uint64_t pc = measure_creation_traffic(
        cfg_for(s, access_method::pc_client), 1);
    const std::uint64_t mobile = measure_creation_traffic(
        cfg_for(s, access_method::mobile_app), 1);
    EXPECT_GT(mobile, pc) << name;
  }
}

// --- Experiment 1': batched creation (Table 7) -------------------------------

TEST(Exp1bBds, DropboxAndUbuntuOnePcAreEfficient) {
  const std::uint64_t update = 100 * KiB;
  const double tue_db = tue(
      measure_batch_creation_traffic(cfg_for(dropbox()), 100, KiB), update);
  const double tue_u1 = tue(
      measure_batch_creation_traffic(cfg_for(ubuntu_one()), 100, KiB), update);
  // Table 7: 1.2 and 1.4.
  EXPECT_LT(tue_db, 2.0);
  EXPECT_LT(tue_u1, 2.2);
}

TEST(Exp1bBds, NonBdsServicesWasteTraffic) {
  const std::uint64_t update = 100 * KiB;
  for (const char* name : {"Google Drive", "OneDrive", "Box", "SugarSync"}) {
    const double t = tue(measure_batch_creation_traffic(
                             cfg_for(*find_service(name)), 100, KiB),
                         update);
    // Table 7: 9-13 for PC clients.
    EXPECT_GT(t, 6.0) << name;
    EXPECT_LT(t, 25.0) << name;
  }
}

TEST(Exp1bBds, WebBdsIsPartialForDropbox) {
  const std::uint64_t update = 100 * KiB;
  const double pc = tue(
      measure_batch_creation_traffic(cfg_for(dropbox()), 100, KiB), update);
  const double web =
      tue(measure_batch_creation_traffic(
              cfg_for(dropbox(), access_method::web_browser), 100, KiB),
          update);
  EXPECT_GT(web, pc);   // partial BDS is worse than PC BDS
  EXPECT_LT(web, 12.0);  // but far better than no BDS (Table 7: 6.0)
}

// --- Experiment 2: deletion ---------------------------------------------------

TEST(Exp2Deletion, NegligibleForAllServicesAndSizes) {
  for (const service_profile& s : all_services()) {
    for (std::uint64_t z : {std::uint64_t{1} * KiB, std::uint64_t{1} * MiB}) {
      const std::uint64_t traffic =
          measure_deletion_traffic(cfg_for(s), z);
      EXPECT_LT(traffic, 100 * KiB) << s.name << " z=" << z;
    }
  }
}

// --- Experiment 3: modification & sync granularity (Fig 4) -------------------

TEST(Exp3Modification, IdsIsFlatFullFileGrows) {
  const experiment_config db = cfg_for(dropbox());
  const experiment_config gd = cfg_for(google_drive());

  const std::uint64_t db_100k = measure_modification_traffic(db, 100 * KiB);
  const std::uint64_t db_1m = measure_modification_traffic(db, 1 * MiB);
  const std::uint64_t gd_100k = measure_modification_traffic(gd, 100 * KiB);
  const std::uint64_t gd_1m = measure_modification_traffic(gd, 1 * MiB);

  // Dropbox PC: ~50 KB regardless of size (Fig 4a).
  EXPECT_LT(db_100k, 120 * KiB);
  EXPECT_LT(db_1m, 120 * KiB);
  EXPECT_LT(db_1m, db_100k * 3);  // flat
  // Google Drive: grows with the file (full-file sync).
  EXPECT_GT(gd_1m, 1 * MiB);
  EXPECT_GT(gd_1m, gd_100k * 5);
}

TEST(Exp3Modification, MobileAppsAlwaysFullFile) {
  // Fig 4(c): even Dropbox re-uploads everything from mobile.
  const std::uint64_t traffic = measure_modification_traffic(
      cfg_for(dropbox(), access_method::mobile_app), 1 * MiB);
  EXPECT_GT(traffic, 900 * KiB);
}

TEST(Exp3Modification, WebAlwaysFullFile) {
  const std::uint64_t traffic = measure_modification_traffic(
      cfg_for(sugarsync(), access_method::web_browser), 1 * MiB);
  EXPECT_GT(traffic, 900 * KiB);
}

// --- Experiment 4: compression (Table 8) -------------------------------------

TEST(Exp4Compression, UploadMatchesTable8Pattern) {
  const std::uint64_t x = 4 * MiB;
  const std::uint64_t gd =
      measure_text_upload_traffic(cfg_for(google_drive()), x);
  const std::uint64_t db = measure_text_upload_traffic(cfg_for(dropbox()), x);
  const std::uint64_t u1 =
      measure_text_upload_traffic(cfg_for(ubuntu_one()), x);
  // Non-compressing services ship ~the full size.
  EXPECT_GT(gd, x);
  // Dropbox and Ubuntu One compress on PC upload.
  EXPECT_LT(db, gd * 8 / 10);
  EXPECT_LT(u1, gd * 8 / 10);
}

TEST(Exp4Compression, WebUploadNeverCompressed) {
  const std::uint64_t x = 2 * MiB;
  for (const char* name : {"Dropbox", "Ubuntu One"}) {
    const std::uint64_t t = measure_text_upload_traffic(
        cfg_for(*find_service(name), access_method::web_browser), x);
    EXPECT_GT(t, x) << name;
  }
}

TEST(Exp4Compression, MobileCompressionIsWeakerThanPc) {
  const std::uint64_t x = 4 * MiB;
  const std::uint64_t pc = measure_text_upload_traffic(cfg_for(dropbox()), x);
  const std::uint64_t mobile = measure_text_upload_traffic(
      cfg_for(dropbox(), access_method::mobile_app), x);
  EXPECT_GT(mobile, pc);
  EXPECT_LT(mobile, x * 115 / 100);  // still compressed a little
}

TEST(Exp4Compression, DownloadCompressedByDropboxEverywhere) {
  const std::uint64_t x = 2 * MiB;
  for (access_method m : all_access_methods) {
    const std::uint64_t dn =
        measure_text_download_traffic(cfg_for(dropbox(), m), x);
    EXPECT_LT(dn, x * 8 / 10) << to_string(m);
  }
  // Ubuntu One mobile download is NOT compressed (Table 8: 10.6 MB).
  const std::uint64_t u1_mobile = measure_text_download_traffic(
      cfg_for(ubuntu_one(), access_method::mobile_app), x);
  EXPECT_GT(u1_mobile, x);
}

// --- Experiment 6: frequent modifications (Fig 6) ----------------------------

TEST(Exp6FrequentMods, FullFileNoDeferOveruses) {
  // Box, "4 KB / 8 sec" to 128 KB total (period beyond its commit
  // processing): every append re-uploads the whole growing file.
  const auto res =
      run_append_experiment(cfg_for(box()), 4.0, 8.0, 128 * KiB);
  EXPECT_GT(res.tue, 10.0);
  EXPECT_GT(res.commits, 20u);
}

TEST(Exp6FrequentMods, IdsKeepsTueModerate) {
  const auto box_res =
      run_append_experiment(cfg_for(box()), 4.0, 8.0, 128 * KiB);
  const auto db_res =
      run_append_experiment(cfg_for(dropbox()), 4.0, 8.0, 128 * KiB);
  EXPECT_LT(db_res.tue, box_res.tue);
}

TEST(Exp6FrequentMods, FixedDeferAbsorbsFastUpdates) {
  // Google Drive, X = 2 < T = 4.2: the debounce timer keeps resetting, so
  // nearly everything batches into one sync — TUE ≈ 1.
  const auto res =
      run_append_experiment(cfg_for(google_drive()), 2.0, 2.0, 64 * KiB);
  EXPECT_LT(res.tue, 3.0);
  EXPECT_LE(res.commits, 3u);
}

TEST(Exp6FrequentMods, FixedDeferFailsBeyondT) {
  // X = 6 > T = 4.2: every append syncs separately again (Fig 6a).
  const auto fast =
      run_append_experiment(cfg_for(google_drive()), 2.0, 2.0, 64 * KiB);
  const auto slow =
      run_append_experiment(cfg_for(google_drive()), 6.0, 6.0, 64 * KiB);
  EXPECT_GT(slow.tue, fast.tue * 3);
}

TEST(Exp6FrequentMods, AsdKeepsTueNearOneEverywhere) {
  // The paper's proposal: ASD batches any steady modification stream.
  const service_profile gd_asd =
      with_defer(google_drive(), defer_config::asd());
  for (double x : {2.0, 6.0, 10.0}) {
    const auto res =
        run_append_experiment(cfg_for(gd_asd), x, x, 64 * KiB);
    EXPECT_LT(res.tue, 4.0) << "X=" << x;
  }
}

// --- Experiment 7: network & hardware (Figs 7, 8) ----------------------------

TEST(Exp7Network, PoorNetworkSavesTraffic) {
  experiment_config mn = cfg_for(box());
  experiment_config bj = cfg_for(box());
  bj.link = link_config::beijing();
  const auto mn_res = run_append_experiment(mn, 1.0, 1.0, 64 * KiB);
  const auto bj_res = run_append_experiment(bj, 1.0, 1.0, 64 * KiB);
  EXPECT_LT(bj_res.tue, mn_res.tue);
  EXPECT_LT(bj_res.commits, mn_res.commits);
}

TEST(Exp7Network, SimpleOperationsUnaffectedByNetwork) {
  experiment_config mn = cfg_for(google_drive());
  experiment_config bj = mn;
  bj.link = link_config::beijing();
  const std::uint64_t t_mn = measure_creation_traffic(mn, 1 * MiB);
  const std::uint64_t t_bj = measure_creation_traffic(bj, 1 * MiB);
  // Same bytes on the wire regardless of bandwidth/latency.
  EXPECT_NEAR(static_cast<double>(t_mn), static_cast<double>(t_bj),
              static_cast<double>(t_mn) * 0.02);
}

TEST(Exp7Hardware, SlowerHardwareSavesTraffic) {
  experiment_config fast = cfg_for(dropbox());
  fast.hardware = hardware_profile::m3();
  experiment_config slow = cfg_for(dropbox());
  slow.hardware = hardware_profile::m2();
  // Sub-second modification stream: M2's ~0.5 s indexing batches it.
  const auto fast_res = run_append_experiment(fast, 0.4, 0.4, 128 * KiB);
  const auto slow_res = run_append_experiment(slow, 0.4, 0.4, 128 * KiB);
  EXPECT_LT(slow_res.commits, fast_res.commits);
  EXPECT_LT(slow_res.total_traffic, fast_res.total_traffic);
}

TEST(Exp7Bandwidth, HigherBandwidthMeansHigherTue) {
  experiment_config lo = cfg_for(dropbox());
  lo.link.up_bytes_per_sec = mbps_to_bytes_per_sec(1.6);
  experiment_config hi = cfg_for(dropbox());
  hi.link.up_bytes_per_sec = mbps_to_bytes_per_sec(20.0);
  const auto lo_res = run_append_experiment(lo, 1.0, 1.0, 128 * KiB);
  const auto hi_res = run_append_experiment(hi, 1.0, 1.0, 128 * KiB);
  EXPECT_GE(hi_res.tue, lo_res.tue);
}

TEST(Exp7Latency, LongerLatencyMeansLowerTue) {
  experiment_config near = cfg_for(dropbox());
  near.link.rtt = sim_time::from_msec(40);
  experiment_config far = cfg_for(dropbox());
  far.link.rtt = sim_time::from_msec(1000);
  const auto near_res = run_append_experiment(near, 0.5, 0.5, 128 * KiB);
  const auto far_res = run_append_experiment(far, 0.5, 0.5, 128 * KiB);
  EXPECT_LE(far_res.tue, near_res.tue);
}

}  // namespace
}  // namespace cloudsync
