// End-to-end convergence property: after ANY sequence of local file
// operations, once the engine settles, the cloud's view of every file equals
// the local sync folder — for every service, every access method, and both
// cloud substrates. This is the invariant that makes traffic optimisations
// safe: whatever the pipeline ships (deltas, dedup'd chunks, compressed
// payloads), state must converge.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace cloudsync {
namespace {

struct convergence_case {
  std::string service;
  access_method method;
  bool chunk_store;
  std::uint64_t seed;
};

void PrintTo(const convergence_case& c, std::ostream* os) {
  *os << c.service << "/" << to_string(c.method)
      << (c.chunk_store ? "/chunks" : "/objects") << "/seed" << c.seed;
}

class Convergence : public ::testing::TestWithParam<convergence_case> {};

TEST_P(Convergence, CloudMatchesLocalAfterRandomOps) {
  const convergence_case& param = GetParam();
  experiment_config cfg{*find_service(param.service)};
  cfg.method = param.method;
  cfg.seed = param.seed;
  cfg.use_chunk_store = param.chunk_store;
  experiment_env env(cfg);
  station& st = env.primary();
  rng& r = env.random();

  std::vector<std::string> paths;
  int created = 0;

  for (int step = 0; step < 60; ++step) {
    // Random inter-operation gap: sometimes rapid-fire, sometimes idle.
    const double gap = r.chance(0.3) ? r.uniform_real() * 0.5
                                     : r.uniform_real() * 20.0;
    env.clock().advance_to(env.clock().now() + sim_time::from_sec(gap));
    const sim_time now = env.clock().now();

    const std::uint64_t action = r.uniform(10);
    if (paths.empty() || action < 3) {
      const std::string path = "f" + std::to_string(created++);
      const std::size_t size = 1 + static_cast<std::size_t>(
                                       r.uniform(64 * 1024));
      st.fs.create(path,
                   r.chance(0.5) ? make_compressed_file(r, size)
                                 : make_text_file(r, size),
                   now);
      paths.push_back(path);
    } else if (action < 6) {
      const std::string& path = paths[r.uniform(paths.size())];
      append_random(st.fs, path, r, 1 + r.uniform(8 * 1024), now);
    } else if (action < 8) {
      const std::string& path = paths[r.uniform(paths.size())];
      if (st.fs.size(path) > 0) modify_random_byte(st.fs, path, r, now);
    } else if (action == 8) {
      const std::size_t idx = r.uniform(paths.size());
      st.fs.remove(paths[idx], now);
      paths.erase(paths.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const std::size_t idx = r.uniform(paths.size());
      const std::string to = "r" + std::to_string(created++);
      st.fs.rename(paths[idx], to, now);
      paths[idx] = to;
    }
  }
  env.settle();

  // Every live local file exists in the cloud with identical content.
  for (const std::string& path : st.fs.list()) {
    const auto cloud_content = env.the_cloud().file_content(0, path);
    ASSERT_TRUE(cloud_content.has_value()) << path;
    EXPECT_EQ(to_string(*cloud_content), to_string(st.fs.read(path))) << path;
  }
  // And nothing extra is live in the cloud.
  EXPECT_EQ(env.the_cloud().metadata().list(0).size(), st.fs.list().size());
}

std::vector<convergence_case> make_cases() {
  std::vector<convergence_case> cases;
  std::uint64_t seed = 1000;
  for (const char* svc :
       {"Google Drive", "OneDrive", "Dropbox", "Box", "Ubuntu One",
        "SugarSync"}) {
    for (access_method m : all_access_methods) {
      cases.push_back({svc, m, false, seed++});
    }
  }
  // Chunk-store substrate for the IDS-capable services.
  cases.push_back({"Dropbox", access_method::pc_client, true, seed++});
  cases.push_back({"SugarSync", access_method::pc_client, true, seed++});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllServices, Convergence,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace cloudsync
