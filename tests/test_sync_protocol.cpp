// The pluggable protocol registry and the adaptive selector: registration
// order, the service-default ordering (the byte-identity anchor), forced-
// mode fallback, deterministic tiebreaks, and end-to-end selection through
// the experiment harness at different grid thread counts.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"
#include "fs/file_ops.hpp"

namespace cloudsync {
namespace {

service_profile lab_profile() {
  service_profile s = dropbox();
  s.name = "lab";
  s.delta_chunk_size = 4 * KiB;
  s.dedup = {dedup_granularity::content_defined, 4 * MiB,
             /*cross_user=*/false, cdc_params{}};
  return s;
}

struct fixture {
  service_profile profile = lab_profile();
  cloud cl;
  planning_env env;
  std::string path = "f";

  fixture() : cl(cloud_config{lab_profile().dedup}) {
    env.profile = &profile;
    env.method = access_method::pc_client;
    env.cl = &cl;
  }

  protocol_update update_for(const content_ref& content,
                             shadow_entry* shadow) {
    protocol_update up;
    up.path = &path;
    up.content = &content;
    up.in_cloud = shadow != nullptr;
    up.shadow = shadow;
    return up;
  }
};

TEST(SyncProtocol, RegistryHoldsBuiltinsInIdOrder) {
  protocol_registry& reg = protocol_registry::instance();
  ASSERT_GE(reg.size(), 3u);
  const auto all = reg.all();
  EXPECT_EQ(all[0]->id(), protocol_id::full_file);
  EXPECT_EQ(all[1]->id(), protocol_id::rsync);
  EXPECT_EQ(all[2]->id(), protocol_id::cdc_dedup);
  for (const sync_protocol* p : all) {
    EXPECT_EQ(reg.find(p->id()), p);
    EXPECT_STRNE(p->name(), "");
  }
}

TEST(SyncProtocol, ServiceDefaultReproducesLegacyOrdering) {
  fixture fx;
  rng r(5);
  const byte_buffer data = make_text_file(r, 16 * KiB);
  const content_ref content = content_ref::from_buffer(byte_buffer(data));
  shadow_entry sh;
  sh.content = content;

  // Shadow present + incremental sync: rsync first.
  protocol_update with_shadow = fx.update_for(content, &sh);
  EXPECT_EQ(select_service_default(fx.env, with_shadow).id(),
            protocol_id::rsync);

  // No shadow: dedup participation comes next.
  protocol_update fresh = fx.update_for(content, nullptr);
  EXPECT_EQ(select_service_default(fx.env, fresh).id(),
            protocol_id::cdc_dedup);

  // force_full vetoes the delta path even with a shadow.
  protocol_update vetoed = fx.update_for(content, &sh);
  vetoed.force_full = true;
  EXPECT_EQ(select_service_default(fx.env, vetoed).id(),
            protocol_id::cdc_dedup);

  // Neither mechanism available: full_file is the floor.
  fx.profile.method(access_method::pc_client).incremental_sync = false;
  fx.profile.method(access_method::pc_client).dedup_enabled = false;
  EXPECT_EQ(select_service_default(fx.env, with_shadow).id(),
            protocol_id::full_file);
}

TEST(SyncProtocol, ForcedModeFallsBackWhenIneligible) {
  fixture fx;
  rng r(9);
  const byte_buffer data = make_text_file(r, 16 * KiB);
  const content_ref content = content_ref::from_buffer(byte_buffer(data));

  protocol_options opts;
  opts.mode = protocol_mode::forced;
  opts.forced = protocol_id::rsync;
  protocol_selector sel(opts, link_config::minnesota());

  // No shadow: rsync is ineligible, the service default (cdc here) ships.
  protocol_update fresh = fx.update_for(content, nullptr);
  selector_pick pick;
  EXPECT_EQ(sel.choose(fx.env, fresh, &pick).id(), protocol_id::cdc_dedup);
  EXPECT_FALSE(pick.predicted);

  // With a shadow the forced protocol applies.
  shadow_entry sh;
  sh.content = content;
  protocol_update with_shadow = fx.update_for(content, &sh);
  EXPECT_EQ(sel.choose(fx.env, with_shadow, &pick).id(), protocol_id::rsync);

  const auto& picks = sel.stats().picks;
  EXPECT_EQ(picks[static_cast<std::size_t>(protocol_id::cdc_dedup)], 1u);
  EXPECT_EQ(picks[static_cast<std::size_t>(protocol_id::rsync)], 1u);
}

TEST(SyncProtocol, AdaptiveTieBreaksToLowestId) {
  // An empty file predicts zero app bytes for both full_file and cdc_dedup
  // (no fingerprints, no payload) — a perfect tie. Strict-less-than keeps
  // the first protocol in registration order: full_file, deterministically.
  fixture fx;
  const content_ref empty;
  protocol_options opts;
  opts.mode = protocol_mode::adaptive;
  protocol_selector sel(opts, link_config::minnesota());

  protocol_update up = fx.update_for(empty, nullptr);
  selector_pick pick;
  EXPECT_EQ(sel.choose(fx.env, up, &pick).id(), protocol_id::full_file);
  EXPECT_TRUE(pick.predicted);
  EXPECT_DOUBLE_EQ(pick.predicted_app_up, 0.0);
}

TEST(SyncProtocol, FullFilePlanMatchesEngineSizing) {
  fixture fx;
  rng r(21);
  const byte_buffer data = make_text_file(r, 16 * KiB);
  const content_ref content = content_ref::from_buffer(byte_buffer(data));
  protocol_update up = fx.update_for(content, nullptr);

  const sync_protocol* full =
      protocol_registry::instance().find(protocol_id::full_file);
  ASSERT_NE(full, nullptr);
  ASSERT_TRUE(full->eligible(fx.env, up));
  const upload_plan plan = full->plan(fx.env, up);
  EXPECT_EQ(plan.act, upload_action::full);
  EXPECT_EQ(plan.protocol, protocol_id::full_file);
  const int level = fx.env.mp().upload_compression_level;
  EXPECT_EQ(plan.payload_up, shipped_content_size(fx.env, content, level));
  EXPECT_TRUE(plan.dedup_commit);  // lab cloud runs a dedup index
  EXPECT_LT(plan.predicted_app_up, 0.0);  // no prediction outside adaptive
}

TEST(SyncProtocol, RsyncPlanCarriesBlueprint) {
  fixture fx;
  rng r(25);
  const byte_buffer old_data = make_text_file(r, 16 * KiB);
  byte_buffer new_data = old_data;
  new_data[100] ^= 0x5a;
  const content_ref content =
      content_ref::from_buffer(byte_buffer(new_data));
  shadow_entry sh;
  sh.content = content_ref::from_buffer(byte_buffer(old_data));
  protocol_update up = fx.update_for(content, &sh);

  const sync_protocol* rsync =
      protocol_registry::instance().find(protocol_id::rsync);
  ASSERT_NE(rsync, nullptr);
  ASSERT_TRUE(rsync->eligible(fx.env, up));
  const upload_plan plan = rsync->plan(fx.env, up);
  EXPECT_EQ(plan.act, upload_action::delta);
  EXPECT_EQ(plan.protocol, protocol_id::rsync);
  ASSERT_NE(plan.blueprint, nullptr);
  EXPECT_EQ(plan.payload_up,
            shipped_delta_size(fx.env, *plan.blueprint,
                               fx.env.mp().upload_compression_level));
  // A one-byte edit deltas to a fraction of the file.
  EXPECT_LT(plan.payload_up, new_data.size() / 2);
}

TEST(SyncProtocol, AdaptiveExperimentCalibratesAndCommits) {
  experiment_config cfg{lab_profile()};
  cfg.method = access_method::pc_client;
  cfg.protocol.mode = protocol_mode::adaptive;
  const protocol_run_result r = run_protocol_experiment(
      cfg, protocol_workload::duplicate_copy, 3, 32 * KiB);

  EXPECT_GT(r.commits, 0u);
  EXPECT_GT(r.total_traffic, 0u);
  const protocol_selector_stats& s = r.selector;
  EXPECT_GT(s.observations, 0u);
  EXPECT_LT(s.median_abs_rel_error(), 0.5);
  std::uint64_t picks = 0;
  for (const std::uint64_t p : s.picks) picks += p;
  EXPECT_EQ(picks, s.observations);
  for (std::size_t p = 0; p < protocol_registry::instance().size(); ++p) {
    EXPECT_GE(s.correction[p], 0.1);
    EXPECT_LE(s.correction[p], 10.0);
  }
  // The duplicate copies must ride the dedup index, not re-upload.
  EXPECT_GT(s.picks[static_cast<std::size_t>(protocol_id::cdc_dedup)], 0u);
}

TEST(SyncProtocol, SelectionDeterministicAcrossGridThreads) {
  // The same adaptive cell evaluated on a 1-thread and a 4-thread grid must
  // meter identical bytes per (direction, category) and make identical
  // picks — selection state is per-client, never cross-run.
  const auto run_cell = [](protocol_workload wl) {
    experiment_config cfg{lab_profile()};
    cfg.method = access_method::pc_client;
    cfg.protocol.mode = protocol_mode::adaptive;
    return run_protocol_experiment(cfg, wl, 3, 32 * KiB);
  };
  const protocol_workload cells[] = {
      protocol_workload::small_edits, protocol_workload::fresh_rewrites,
      protocol_workload::duplicate_copy, protocol_workload::small_edits};

  std::vector<protocol_run_result> serial(std::size(cells));
  parallel_runner one(1);
  one.run_indexed(std::size(cells),
                  [&](std::size_t i) { serial[i] = run_cell(cells[i]); });
  std::vector<protocol_run_result> parallel(std::size(cells));
  parallel_runner four(4);
  four.run_indexed(std::size(cells),
                   [&](std::size_t i) { parallel[i] = run_cell(cells[i]); });

  for (std::size_t i = 0; i < std::size(cells); ++i) {
    EXPECT_EQ(serial[i].total_traffic, parallel[i].total_traffic) << i;
    EXPECT_EQ(serial[i].commits, parallel[i].commits) << i;
    EXPECT_EQ(serial[i].selector.picks, parallel[i].selector.picks) << i;
    EXPECT_EQ(serial[i].selector.observations,
              parallel[i].selector.observations)
        << i;
    for (int d = 0; d < 2; ++d) {
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
        EXPECT_EQ(serial[i].meter.get(static_cast<direction>(d),
                                      static_cast<traffic_category>(c)),
                  parallel[i].meter.get(static_cast<direction>(d),
                                        static_cast<traffic_category>(c)))
            << i << " dir " << d << " cat " << c;
      }
    }
  }
}

TEST(SyncProtocol, ForcedExperimentShipsEveryProtocol) {
  // Forcing each protocol on the same workload must converge (same commits)
  // while shifting traffic between payload and metadata as the protocol
  // dictates: full-file ships the most payload, cdc the most metadata.
  const auto run_forced = [](protocol_id id) {
    experiment_config cfg{lab_profile()};
    cfg.method = access_method::pc_client;
    cfg.protocol.mode = protocol_mode::forced;
    cfg.protocol.forced = id;
    return run_protocol_experiment(cfg, protocol_workload::small_edits, 3,
                                   32 * KiB);
  };
  const protocol_run_result full = run_forced(protocol_id::full_file);
  const protocol_run_result rsync = run_forced(protocol_id::rsync);
  const protocol_run_result cdc = run_forced(protocol_id::cdc_dedup);

  EXPECT_EQ(full.commits, rsync.commits);
  EXPECT_EQ(full.commits, cdc.commits);
  EXPECT_GT(full.meter.get(direction::up, traffic_category::payload),
            rsync.meter.get(direction::up, traffic_category::payload));
  EXPECT_GT(cdc.meter.get(direction::down, traffic_category::metadata),
            full.meter.get(direction::down, traffic_category::metadata));
  EXPECT_LT(rsync.total_traffic, full.total_traffic);
}

}  // namespace
}  // namespace cloudsync
