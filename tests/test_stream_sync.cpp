// Streaming sync vs legacy whole-file planning: the two worlds must meter
// byte-identical traffic in every category, converge to the same cloud
// state, and the streaming world must never flatten whole files.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace cloudsync {
namespace {

/// The same seeded workload replayed in one world: a mix of compressible,
/// text, and incompressible files, then edits and appends — every planning
/// path (full upload, delta, dedup probe) gets exercised.
void run_workload(experiment_env& env) {
  station& st = env.primary();
  rng content(7);
  st.fs.create("a.bin", make_compressed_file(content, 600 * 1024),
               env.clock().now());
  st.fs.create("b.txt", make_text_file(content, 200 * 1024),
               env.clock().now());
  st.fs.create("c.rand", random_bytes(content, 150 * 1024),
               env.clock().now());
  env.settle();
  for (int i = 0; i < 3; ++i) {
    env.clock().advance_to(env.clock().now() + sim_time::from_sec(60));
    modify_random_byte(st.fs, "a.bin", env.random(), env.clock().now());
    env.settle();
  }
  env.clock().advance_to(env.clock().now() + sim_time::from_sec(60));
  append_random(st.fs, "b.txt", env.random(), 32 * 1024, env.clock().now());
  env.settle();
  env.clock().advance_to(env.clock().now() + sim_time::from_sec(60));
  modify_random_byte(st.fs, "c.rand", env.random(), env.clock().now());
  env.settle();
}

struct world_result {
  traffic_meter meter;
  std::uint64_t commits = 0;
  std::uint64_t a_hash = 0, b_hash = 0, c_hash = 0;
};

world_result run_world(service_profile profile, bool whole_file_planning,
                       bool journal) {
  experiment_config cfg{std::move(profile)};
  cfg.method = access_method::pc_client;
  // No process-wide caches: a value computed by one world must never be
  // served to the other, or a divergence would be silently hidden.
  cfg.use_content_cache = false;
  cfg.whole_file_planning = whole_file_planning;
  cfg.journal = journal;
  experiment_env env(cfg);
  run_workload(env);

  world_result res;
  res.meter = env.primary().client->meter();
  res.commits = env.primary().client->commit_count();
  res.a_hash = env.the_cloud().file_content(0, "a.bin")->hash64();
  res.b_hash = env.the_cloud().file_content(0, "b.txt")->hash64();
  res.c_hash = env.the_cloud().file_content(0, "c.rand")->hash64();
  return res;
}

void expect_identical_worlds(const world_result& legacy,
                             const world_result& streaming) {
  // The satellite self-check: per-category, per-direction equality — not
  // just grand totals, which could mask compensating differences.
  for (const direction dir : {direction::up, direction::down}) {
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
      const auto cat = static_cast<traffic_category>(c);
      EXPECT_EQ(streaming.meter.get(dir, cat), legacy.meter.get(dir, cat))
          << to_string(cat) << (dir == direction::up ? " up" : " down");
    }
  }
  EXPECT_EQ(streaming.commits, legacy.commits);
  EXPECT_EQ(streaming.a_hash, legacy.a_hash);
  EXPECT_EQ(streaming.b_hash, legacy.b_hash);
  EXPECT_EQ(streaming.c_hash, legacy.c_hash);
}

TEST(StreamSync, DeltaServiceMetersIdenticalTraffic) {
  // Dropbox: IDS + compression + dedup — the full streaming surface.
  expect_identical_worlds(run_world(dropbox(), true, false),
                          run_world(dropbox(), false, false));
}

TEST(StreamSync, FullFileServiceMetersIdenticalTraffic) {
  // Google Drive: no IDS, so this pins the wire_payload_size_ref path.
  expect_identical_worlds(run_world(google_drive(), true, false),
                          run_world(google_drive(), false, false));
}

TEST(StreamSync, ResumableSessionsMeterIdenticalTraffic) {
  // Journaled world: uploads ship through resumable sessions; streaming
  // delta literals must charge the identical resume/payload bytes.
  expect_identical_worlds(run_world(dropbox(), true, true),
                          run_world(dropbox(), false, true));
}

TEST(StreamSync, SugarSyncLargeDeltaBlocksIdentical) {
  // 128 KiB delta blocks stress different tail/boundary cases than 10 KiB.
  expect_identical_worlds(run_world(sugarsync(), true, false),
                          run_world(sugarsync(), false, false));
}

}  // namespace
}  // namespace cloudsync
