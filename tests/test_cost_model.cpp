#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace cloudsync {
namespace {

TEST(CostModel, S3PricesOutboundOnly) {
  const pricing p = pricing::s3_2014();
  const traffic_bill bill = price_traffic(2'000'000'000, 5'000'000'000, 0, p);
  EXPECT_NEAR(bill.outbound_usd, 0.10, 1e-9);  // 2 GB * $0.05
  EXPECT_DOUBLE_EQ(bill.inbound_usd, 0.0);
  EXPECT_NEAR(bill.total_usd(), 0.10, 1e-9);
}

TEST(CostModel, RequestPricing) {
  pricing p;
  p.usd_per_million_requests = 5.0;
  const traffic_bill bill = price_traffic(0, 0, 2'000'000, p);
  EXPECT_NEAR(bill.request_usd, 10.0, 1e-9);
}

TEST(CostModel, PaperDailyProjection) {
  // §1: 1 billion file syncs/day x 5.18 MB outbound x $0.05/GB ≈ $260,000.
  const double usd = project_daily_cost(1e9, 5.18e6, 2.8e6,
                                        pricing::s3_2014());
  EXPECT_NEAR(usd, 259'000.0, 5'000.0);
}

TEST(CostModel, MeterPricing) {
  traffic_meter m;
  m.record(direction::down, traffic_category::payload, 1'000'000'000);
  m.record(direction::up, traffic_category::payload, 500'000'000);
  const traffic_bill bill = price_meter(m, 0, pricing::s3_2014());
  EXPECT_NEAR(bill.outbound_usd, 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(bill.inbound_usd, 0.0);
}

TEST(CostModel, InboundPricingWhenConfigured) {
  pricing p;
  p.usd_per_inbound_gb = 0.02;
  const traffic_bill bill = price_traffic(0, 10'000'000'000, 0, p);
  EXPECT_NEAR(bill.inbound_usd, 0.20, 1e-9);
}

TEST(CostModel, ZeroTrafficIsFree) {
  EXPECT_DOUBLE_EQ(
      price_traffic(0, 0, 0, pricing::s3_2014()).total_usd(), 0.0);
}

}  // namespace
}  // namespace cloudsync
