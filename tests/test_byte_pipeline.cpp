// Determinism contract of the fused byte pipeline and the optimized
// kernels behind it: every fused output must be bit-identical to the
// standalone kernel, the rolling checksum must agree with a full recompute
// at every offset, CDC boundaries must survive offset shifts, and the
// digests must match their published NIST / RFC test vectors.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chunking/cdc.hpp"
#include "chunking/fixed_chunker.hpp"
#include "dedup/dedup_index.hpp"
#include "pipeline/byte_pipeline.hpp"
#include "util/adler32.hpp"
#include "util/crc32.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/sha1.hpp"
#include "util/sha256.hpp"

namespace cloudsync {
namespace {

byte_view sv(const std::string& s) {
  return byte_view{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

void expect_chunks_eq(const std::vector<chunk_ref>& a,
                      const std::vector<chunk_ref>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset) << "chunk " << i;
    EXPECT_EQ(a[i].size, b[i].size) << "chunk " << i;
  }
}

// ---------------------------------------------------------------------------
// Published vectors
// ---------------------------------------------------------------------------

TEST(KernelVectors, Sha256Fips180) {
  EXPECT_EQ(sha256(byte_view{}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256(sv("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256(sv("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopno"
                      "pq"))
                .hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(KernelVectors, Sha1Fips180) {
  EXPECT_EQ(sha1(byte_view{}).hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1(sv("abc")).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1(sv("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnop"
                    "q"))
                .hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(KernelVectors, Md5Rfc1321Suite) {
  const struct {
    const char* msg;
    const char* hex;
  } kSuite[] = {
      {"", "d41d8cd98f00b204e9800998ecf8427e"},
      {"a", "0cc175b9c0f1b6a831c399e269772661"},
      {"abc", "900150983cd24fb0d6963f7d28e17f72"},
      {"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
      {"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
      {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
       "d174ab98d277d9f5a5611c2c9f419d9f"},
      {"123456789012345678901234567890123456789012345678901234567890123456789"
       "01234567890",
       "57edf4a22be3c955ac49da2e2107b67a"},
  };
  for (const auto& c : kSuite) {
    EXPECT_EQ(md5(sv(c.msg)).hex(), c.hex) << "MD5(\"" << c.msg << "\")";
  }
}

TEST(KernelVectors, Crc32CheckValue) {
  // The standard CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32(sv("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(byte_view{}), 0u);
}

// ---------------------------------------------------------------------------
// Rolling checksum == full recompute at every offset
// ---------------------------------------------------------------------------

TEST(RollingProperty, MatchesFullRecomputeAtEveryOffset) {
  rng r(1234);
  for (const std::size_t window : {16uz, 700uz, 4096uz}) {
    const byte_buffer data = random_bytes(r, 3 * window + 123);
    rolling_checksum rc(window);
    rc.reset(byte_view{data.data(), window});
    for (std::size_t off = 0;; ++off) {
      ASSERT_EQ(rc.value(),
                weak_checksum(byte_view{data.data() + off, window}))
          << "window " << window << " offset " << off;
      if (off + window >= data.size()) break;
      rc.roll(data[off], data[off + window]);
    }
  }
}

TEST(RollingProperty, WeakAccumulateSplitsArbitrarily) {
  rng r(99);
  const byte_buffer data = random_bytes(r, 10'000);
  const std::uint32_t whole = weak_checksum(data);
  for (const std::size_t cut : {0uz, 1uz, 63uz, 64uz, 65uz, 9'999uz}) {
    std::uint32_t a = 0, b = 0;
    weak_accumulate(byte_view{data.data(), cut}, a, b);
    weak_accumulate(byte_view{data.data() + cut, data.size() - cut}, a, b);
    EXPECT_EQ(((b << 16) | (a & 0xffffu)), whole) << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------------
// CDC boundary invariance under offset shift
// ---------------------------------------------------------------------------

TEST(CdcProperty, BoundariesRealignAfterPrefixInsertion) {
  rng r(777);
  const byte_buffer data = random_bytes(r, 256 * 1024);
  const cdc_params params{};
  const auto base = content_defined_chunks(data, params);
  ASSERT_GT(base.size(), 3u);

  for (const std::size_t shift : {1uz, 37uz, 4096uz}) {
    byte_buffer shifted = random_bytes(r, shift);
    shifted.insert(shifted.end(), data.begin(), data.end());
    const auto moved = content_defined_chunks(shifted, params);

    // End-of-chunk positions, expressed as offsets into the original data.
    std::vector<std::size_t> base_cuts, moved_cuts;
    for (const chunk_ref& c : base) base_cuts.push_back(c.offset + c.size);
    for (const chunk_ref& c : moved) {
      const std::size_t end = c.offset + c.size;
      if (end > shift) moved_cuts.push_back(end - shift);
    }

    // The gear cut decision only reads a trailing byte window, so the two
    // streams must land on a common boundary quickly and then stay in
    // lockstep to the end of the buffer.
    std::size_t b = 0, m = 0;
    while (b < base_cuts.size() && m < moved_cuts.size() &&
           base_cuts[b] != moved_cuts[m]) {
      if (base_cuts[b] < moved_cuts[m]) {
        ++b;
      } else {
        ++m;
      }
    }
    ASSERT_LT(b, base_cuts.size()) << "no shared boundary at shift " << shift;
    EXPECT_LT(b, 4u) << "resynchronisation took too long";
    while (b < base_cuts.size() && m < moved_cuts.size()) {
      EXPECT_EQ(base_cuts[b], moved_cuts[m]) << "diverged after resync";
      ++b;
      ++m;
    }
    EXPECT_EQ(b, base_cuts.size());
    EXPECT_EQ(m, moved_cuts.size());
  }
}

TEST(CdcProperty, RespectsSizeBoundsAndCoversBuffer) {
  rng r(31337);
  const byte_buffer data = random_bytes(r, 200 * 1024 + 17);
  const cdc_params params{};
  const auto chunks = content_defined_chunks(data, params);
  std::size_t expect_off = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].offset, expect_off);
    if (i + 1 < chunks.size()) {
      EXPECT_GE(chunks[i].size, params.min_size);
    }
    EXPECT_LE(chunks[i].size, params.max_size);
    expect_off += chunks[i].size;
  }
  EXPECT_EQ(expect_off, data.size());
}

// ---------------------------------------------------------------------------
// Fused pipeline == standalone kernels
// ---------------------------------------------------------------------------

content_request everything() {
  content_request req;
  req.sha256 = req.md5 = req.sha1 = req.crc32 = req.weak = req.entropy = true;
  req.cdc = cdc_params{};
  req.fixed_block = 4 * 1024;
  return req;
}

void expect_report_matches(const content_report& rep, byte_view data) {
  EXPECT_EQ(rep.sha256, sha256(data));
  EXPECT_EQ(rep.md5, md5(data));
  EXPECT_EQ(rep.sha1, sha1(data));
  EXPECT_EQ(rep.crc32, crc32(data));
  EXPECT_EQ(rep.weak, weak_checksum(data));
  EXPECT_EQ(rep.total_bytes, data.size());
  expect_chunks_eq(rep.cdc_chunks, content_defined_chunks(data, cdc_params{}));
  expect_chunks_eq(rep.fixed_chunks, fixed_chunks(data, 4 * 1024));
}

TEST(BytePipeline, OneShotMatchesStandaloneKernels) {
  rng r(42);
  for (const std::size_t n : {0uz, 1uz, 63uz, 64uz, 65uz, 4096uz,
                              100'000uz}) {
    const byte_buffer data = random_bytes(r, n);
    const content_report rep = analyze_content(data, everything());
    expect_report_matches(rep, data);
  }
}

TEST(BytePipeline, TiledFeedMatchesWholeBuffer) {
  rng r(4242);
  const byte_buffer data = random_bytes(r, 150'000);
  for (const std::size_t tile : {1uz, 7uz, 64uz, 1000uz, 65'536uz}) {
    byte_pipeline p(everything());
    for (std::size_t off = 0; off < data.size(); off += tile) {
      const std::size_t take = std::min(tile, data.size() - off);
      p.feed(byte_view{data.data() + off, take});
    }
    expect_report_matches(p.finish(), data);
  }
}

TEST(BytePipeline, FinishTwiceThrows) {
  byte_pipeline p(everything());
  (void)p.finish();
  EXPECT_THROW((void)p.finish(), std::logic_error);
}

TEST(BytePipeline, EntropyBounds) {
  rng r(5);
  const byte_buffer random = random_bytes(r, 64 * 1024);
  content_request req;
  req.entropy = true;
  const double random_bits =
      analyze_content(random, req).entropy_bits_per_byte;
  EXPECT_GT(random_bits, 7.9);  // incompressible
  EXPECT_LE(random_bits, 8.0);

  const byte_buffer constant(64 * 1024, std::uint8_t{7});
  EXPECT_EQ(analyze_content(constant, req).entropy_bits_per_byte, 0.0);
}

TEST(BytePipeline, ChunkDigestsMatchPerChunkSha256) {
  rng r(6);
  const byte_buffer data = random_bytes(r, 70'000);
  const auto layout = fixed_chunks(data, 4 * 1024);
  const auto fps = chunk_digests(data, layout);
  ASSERT_EQ(fps.size(), layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    EXPECT_EQ(fps[i], sha256(slice(data, layout[i])));
  }
}

// ---------------------------------------------------------------------------
// Flat fingerprint shard
// ---------------------------------------------------------------------------

fingerprint fp_of_u64(std::uint64_t v) {
  byte_buffer b(8);
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return fingerprint_of(b);
}

TEST(FingerprintShard, AddContainsRemoveRefcount) {
  fingerprint_shard shard;
  const fingerprint fp = fp_of_u64(1);
  EXPECT_FALSE(shard.contains(fp));
  shard.remove(fp);  // absent: no-op
  shard.add(fp);
  shard.add(fp);
  EXPECT_TRUE(shard.contains(fp));
  EXPECT_EQ(shard.unique_count(), 1u);
  shard.remove(fp);
  EXPECT_TRUE(shard.contains(fp)) << "refcount 1 remains";
  shard.remove(fp);
  EXPECT_FALSE(shard.contains(fp));
  EXPECT_EQ(shard.unique_count(), 0u);
}

TEST(FingerprintShard, GrowsAndKeepsEveryEntry) {
  fingerprint_shard shard(4);  // force many rehashes
  constexpr std::uint64_t kN = 20'000;
  for (std::uint64_t i = 0; i < kN; ++i) shard.add(fp_of_u64(i));
  EXPECT_EQ(shard.unique_count(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(shard.contains(fp_of_u64(i))) << i;
  }
  EXPECT_FALSE(shard.contains(fp_of_u64(kN + 1)));
}

TEST(FingerprintShard, TombstonesAreReusedAcrossChurn) {
  fingerprint_shard shard(16);
  // Repeatedly fill and drain; without tombstone reuse / rehash cleanup the
  // table would degrade or grow without bound.
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 100; ++i) shard.add(fp_of_u64(i));
    for (std::uint64_t i = 0; i < 100; ++i) shard.remove(fp_of_u64(i));
  }
  EXPECT_EQ(shard.unique_count(), 0u);
  shard.add(fp_of_u64(7));
  EXPECT_TRUE(shard.contains(fp_of_u64(7)));
}

TEST(FingerprintShard, MatchesMapSemanticsUnderRandomOps) {
  rng r(2024);
  fingerprint_shard shard;
  std::unordered_map<fingerprint, std::uint64_t> model;
  for (int op = 0; op < 20'000; ++op) {
    const fingerprint fp = fp_of_u64(r.uniform(500));
    if (r.chance(0.6)) {
      shard.add(fp);
      ++model[fp];
    } else {
      shard.remove(fp);
      const auto it = model.find(fp);
      if (it != model.end() && --it->second == 0) model.erase(it);
    }
    if (op % 1000 == 0) {
      ASSERT_EQ(shard.unique_count(), model.size()) << "op " << op;
    }
  }
  EXPECT_EQ(shard.unique_count(), model.size());
  for (const auto& [fp, count] : model) {
    EXPECT_TRUE(shard.contains(fp));
  }
}

}  // namespace
}  // namespace cloudsync
