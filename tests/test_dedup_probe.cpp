// Algorithm 1 (iterative self duplication) must recover Table 9.
#include <gtest/gtest.h>

#include "core/dedup_probe.hpp"

namespace cloudsync {
namespace {

experiment_config cfg_for(service_profile p) {
  return experiment_config{std::move(p)};
}

TEST(DedupProbe, DropboxSameUserFindsFourMb) {
  const auto res = probe_dedup_granularity(cfg_for(dropbox()), false);
  EXPECT_TRUE(res.full_file_dedup);  // block dedup implies full-file
  ASSERT_TRUE(res.block_dedup);
  EXPECT_EQ(res.block_size, 4 * MiB);
  EXPECT_EQ(res.granularity_string(), "4.00 MB");
}

TEST(DedupProbe, DropboxCrossUserFindsNothing) {
  const auto res = probe_dedup_granularity(cfg_for(dropbox()), true);
  EXPECT_FALSE(res.full_file_dedup);
  EXPECT_FALSE(res.block_dedup);
  EXPECT_EQ(res.granularity_string(), "No");
}

TEST(DedupProbe, UbuntuOneFullFileBothScopes) {
  for (bool cross : {false, true}) {
    const auto res = probe_dedup_granularity(cfg_for(ubuntu_one()), cross);
    EXPECT_TRUE(res.full_file_dedup) << "cross=" << cross;
    EXPECT_FALSE(res.block_dedup) << "cross=" << cross;
    EXPECT_EQ(res.granularity_string(), "Full file");
  }
}

TEST(DedupProbe, NoDedupServices) {
  for (const char* name : {"Google Drive", "Box"}) {
    const auto res =
        probe_dedup_granularity(cfg_for(*find_service(name)), false);
    EXPECT_FALSE(res.full_file_dedup) << name;
    EXPECT_FALSE(res.block_dedup) << name;
    EXPECT_EQ(res.granularity_string(), "No") << name;
  }
}

TEST(DedupProbe, WebMethodNeverSeesDedup) {
  // Table 9 note: web-based synchronisation does not apply dedup, even for
  // Dropbox.
  experiment_config cfg = cfg_for(dropbox());
  cfg.method = access_method::web_browser;
  const auto res = probe_dedup_granularity(cfg, false);
  EXPECT_FALSE(res.block_dedup);
  EXPECT_FALSE(res.full_file_dedup);
}

TEST(DedupProbe, ProbeLogsItsSteps) {
  const auto res = probe_dedup_granularity(cfg_for(ubuntu_one()), false);
  EXPECT_FALSE(res.log.empty());
  EXPECT_GT(res.upload_rounds, 1);
}

TEST(DedupProbe, ConvergesInLogarithmicRounds) {
  const auto res = probe_dedup_granularity(cfg_for(dropbox()), false);
  // O(log B) as the paper claims: a handful of self-duplication rounds.
  EXPECT_LE(res.upload_rounds, 2 + 2 * 18);
}

}  // namespace
}  // namespace cloudsync
